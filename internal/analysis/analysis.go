// Package analysis implements the paper's analytical companion pieces:
// a mathematical single-bit-flip outcome model for posits (the
// "mathematical analysis could be done to predict potential error"
// future-work item), classification of the flip mechanisms the paper
// describes in §5 (regime expansion, regime inversion, sign-magnitude
// coupling), and the decimal-accuracy-vs-magnitude profile of Fig. 7.
package analysis

import (
	"fmt"
	"math"

	"positres/internal/ieee754"
	"positres/internal/posit"
	"positres/internal/qcat"
)

// PositFlipClass names the mechanism by which a single-bit flip
// perturbs a posit, following the paper's §5 taxonomy.
type PositFlipClass int

const (
	// ClassSign: the sign bit flipped. Unlike IEEE-754, this changes
	// the magnitude too (§5.7).
	ClassSign PositFlipClass = iota
	// ClassRegimeExpand: the terminating regime bit R_k flipped, so
	// the run absorbs the following bits and the regime grows —
	// the dominant error for |v| > 1 (§5.4.1, Fig. 12).
	ClassRegimeExpand
	// ClassRegimeShrink: a run bit R_i (0 < i < k) flipped, cutting
	// the run short and shrinking the magnitude (§5.4.1, Fig. 13).
	ClassRegimeShrink
	// ClassRegimeInvert: the leading run bit R_0 flipped with k > 1,
	// inverting the regime direction (magnitude jumps across 1).
	ClassRegimeInvert
	// ClassRegimeInvertExpand: the sole regime run bit flipped (k = 1),
	// inverting AND expanding the regime — the paper's Fig. 15 edge
	// case with absolute-error spikes up to 1e11.
	ClassRegimeInvertExpand
	// ClassExponent: an exponent bit flipped (≤ ×4 magnitude shift,
	// §5.6).
	ClassExponent
	// ClassFraction: a fraction bit flipped (linear perturbation,
	// §5.5).
	ClassFraction
	// ClassToNaR / ClassFromNaR / ClassFromZero: special patterns.
	ClassToNaR
	ClassFromNaR
	ClassFromZero
)

func (c PositFlipClass) String() string {
	switch c {
	case ClassSign:
		return "sign"
	case ClassRegimeExpand:
		return "regime-expand"
	case ClassRegimeShrink:
		return "regime-shrink"
	case ClassRegimeInvert:
		return "regime-invert"
	case ClassRegimeInvertExpand:
		return "regime-invert-expand"
	case ClassExponent:
		return "exponent"
	case ClassFraction:
		return "fraction"
	case ClassToNaR:
		return "to-NaR"
	case ClassFromNaR:
		return "from-NaR"
	case ClassFromZero:
		return "from-zero"
	}
	return fmt.Sprintf("PositFlipClass(%d)", int(c))
}

// PositFlip is the analytical outcome of one bit flip in a posit.
type PositFlip struct {
	Cfg posit.Config // posit configuration (width, es) of the pattern
	Pos int          // flipped bit position, 0 = LSB

	OldBits, NewBits uint64  // patterns before and after the flip
	OldVal, NewVal   float64 // decoded values before and after

	Class PositFlipClass // which posit field the flip landed in
	// OldK/NewK: regime run lengths before and after; RegimeDelta is
	// the change in the regime *value* r (each unit scales by
	// useed = 2^2^ES).
	OldK, NewK  int
	RegimeDelta int // change in regime value r (see OldK/NewK above)

	AbsErr       float64 // |NewVal - OldVal|
	RelErr       float64 // AbsErr / |OldVal|, +Inf when OldVal is 0
	Catastrophic bool    // RelErr above the campaign threshold (or NaR)
}

// AnalyzePositFlip predicts the outcome of flipping bit pos of the
// posit pattern bits — without running an injection. The prediction is
// exact (it re-decodes the flipped pattern, which is the closed-form
// the paper derives region by region) and classifies the mechanism.
func AnalyzePositFlip(cfg posit.Config, bits uint64, pos int) PositFlip {
	bits = cfg.Canon(bits)
	newBits := cfg.Canon(bits ^ uint64(1)<<uint(pos))
	pf := PositFlip{
		Cfg: cfg, Pos: pos,
		OldBits: bits, NewBits: newBits,
		OldVal: posit.DecodeFloat64(cfg, bits),
		NewVal: posit.DecodeFloat64(cfg, newBits),
	}
	oldF := posit.DecodeFields(cfg, bits)
	newF := posit.DecodeFields(cfg, newBits)
	pf.OldK, pf.NewK = oldF.K, newF.K
	pf.RegimeDelta = newF.R - oldF.R

	switch {
	case bits == cfg.NaR():
		pf.Class = ClassFromNaR
	case bits == 0:
		pf.Class = ClassFromZero
	case newBits == cfg.NaR():
		pf.Class = ClassToNaR
	case pos == cfg.N-1:
		pf.Class = ClassSign
	default:
		switch posit.FieldAt(cfg, bits, pos) {
		case posit.FieldExponent:
			pf.Class = ClassExponent
		case posit.FieldFraction:
			pf.Class = ClassFraction
		default: // regime
			runTop := cfg.N - 2 // position of R_0
			i := runTop - pos   // index within the regime field
			switch {
			case i == oldF.K && oldF.RegimeLen > oldF.K:
				// The terminating bit R_k.
				pf.Class = ClassRegimeExpand
			case i == 0 && oldF.K == 1:
				pf.Class = ClassRegimeInvertExpand
			case i == 0:
				pf.Class = ClassRegimeInvert
			default:
				pf.Class = ClassRegimeShrink
			}
		}
	}

	p := qcat.Point(pf.OldVal, pf.NewVal)
	pf.AbsErr, pf.RelErr, pf.Catastrophic = p.AbsErr, p.RelErr, p.Catastrophic
	return pf
}

// SweepPositFlips analyzes every single-bit flip of a pattern,
// LSB-first — the per-value sweep behind the paper's worked examples.
func SweepPositFlips(cfg posit.Config, bits uint64) []PositFlip {
	out := make([]PositFlip, cfg.N)
	for pos := 0; pos < cfg.N; pos++ {
		out[pos] = AnalyzePositFlip(cfg, bits, pos)
	}
	return out
}

// IEEEFlip is the analytical outcome of one bit flip in an IEEE
// value, pairing the measured error with the Elliott closed form.
type IEEEFlip struct {
	Fmt ieee754.Format // IEEE format (binary32/binary64) of the pattern
	Pos int            // flipped bit position, 0 = LSB

	OldBits, NewBits uint64  // patterns before and after the flip
	OldVal, NewVal   float64 // decoded values before and after

	Field   ieee754.FieldKind   // sign/exponent/fraction owning the bit
	Outcome ieee754.FlipOutcome // qualitative outcome class of the flip

	AbsErr       float64 // |NewVal - OldVal|
	RelErr       float64 // AbsErr / |OldVal|, +Inf when OldVal is 0
	Catastrophic bool    // RelErr above the campaign threshold (or NaN/Inf)
	// PredictedRelErr is the Elliott et al. closed form (NaN when the
	// model is out of scope); it matches RelErr in scope.
	PredictedRelErr float64
}

// AnalyzeIEEEFlip predicts the outcome of flipping bit pos of an IEEE
// pattern.
func AnalyzeIEEEFlip(f ieee754.Format, bits uint64, pos int) IEEEFlip {
	bits &= f.Mask()
	newBits := (bits ^ uint64(1)<<uint(pos)) & f.Mask()
	fl := IEEEFlip{
		Fmt: f, Pos: pos,
		OldBits: bits, NewBits: newBits,
		OldVal: f.Decode(bits), NewVal: f.Decode(newBits),
		Field:   f.FieldAt(pos),
		Outcome: f.ClassifyFlip(bits, pos),
	}
	p := qcat.Point(fl.OldVal, fl.NewVal)
	fl.AbsErr, fl.RelErr, fl.Catastrophic = p.AbsErr, p.RelErr, p.Catastrophic
	fl.PredictedRelErr = f.TheoreticalRelError(bits, pos)
	return fl
}

// SweepIEEEFlips analyzes every single-bit flip of an IEEE pattern.
func SweepIEEEFlips(f ieee754.Format, bits uint64) []IEEEFlip {
	out := make([]IEEEFlip, f.Width())
	for pos := 0; pos < f.Width(); pos++ {
		out[pos] = AnalyzeIEEEFlip(f, bits, pos)
	}
	return out
}

// RegimeExpansionScale returns the paper's §5.4.1 closed form for an
// R_k flip: the magnitude scales by useed^Δr = 2^(2^ES · Δr) up to the
// reinterpretation of the exponent and fraction bits (a factor within
// [2^-(2^ES+1), 2^(2^ES+1))). The returned value is the pure regime
// contribution 2^(2^ES·Δr).
func RegimeExpansionScale(cfg posit.Config, flip PositFlip) float64 {
	return math.Exp2(float64(int(1) << uint(cfg.ES) * flip.RegimeDelta))
}
