package analysis

import (
	"math"

	"positres/internal/ieee754"
	"positres/internal/posit"
)

// AccuracyPoint is one point of the paper's Fig. 7: the worst-case
// decimal accuracy of a format for values at binary scale 2^Scale.
type AccuracyPoint struct {
	Scale       int     // base-2 exponent of the value's binade
	PositDigits float64 // decimal digits of the posit format at that scale
	IEEEDigits  float64 // decimal digits of the IEEE format at that scale
}

// log10of2 converts significand bits to decimal digits.
const log10of2 = 0.30102999566398119521

// PositDigitsAt returns the decimal accuracy of a posit configuration
// for values in the binade [2^scale, 2^(scale+1)): log10(2)·(m+1)
// where m is the fraction length at that scale. Scales outside the
// dynamic range have zero digits.
func PositDigitsAt(cfg posit.Config, scale int) float64 {
	if scale >= cfg.MaxScale() || scale < -cfg.MaxScale() {
		return 0
	}
	r := scale >> uint(cfg.ES)
	regimeLen := r + 2
	if r < 0 {
		regimeLen = -r + 1
	}
	m := cfg.N - 1 - regimeLen - cfg.ES
	if m < 0 {
		m = 0
	}
	return log10of2 * float64(m+1)
}

// IEEEDigitsAt returns the decimal accuracy of an IEEE format at a
// binade: constant for normals, tapering through the subnormals, zero
// outside the range.
func IEEEDigitsAt(f ieee754.Format, scale int) float64 {
	switch {
	case scale > f.EMax():
		return 0 // overflows to Inf
	case scale >= f.EMin():
		return log10of2 * float64(f.FracBits+1)
	case scale >= f.EMin()-f.FracBits:
		// Subnormal: one significand bit lost per binade below EMin.
		return log10of2 * float64(f.FracBits+1-(f.EMin()-scale))
	}
	return 0
}

// DecimalAccuracyProfile tabulates Fig. 7 over [-maxScale, +maxScale]
// of the posit configuration (the IEEE curve is clipped to its own
// range inside that window).
func DecimalAccuracyProfile(cfg posit.Config, f ieee754.Format) []AccuracyPoint {
	lo, hi := -cfg.MaxScale(), cfg.MaxScale()
	out := make([]AccuracyPoint, 0, hi-lo+1)
	for s := lo; s <= hi; s++ {
		out = append(out, AccuracyPoint{
			Scale:       s,
			PositDigits: PositDigitsAt(cfg, s),
			IEEEDigits:  IEEEDigitsAt(f, s),
		})
	}
	return out
}

// CrossoverScales returns the scales at which the posit's accuracy
// advantage over the IEEE format changes sign — the "golden zone"
// boundaries around ±1 that the posit literature (and the paper's
// Fig. 7) highlight.
func CrossoverScales(cfg posit.Config, f ieee754.Format) (lo, hi int) {
	lo, hi = 0, 0
	prev := PositDigitsAt(cfg, -cfg.MaxScale()) - IEEEDigitsAt(f, -cfg.MaxScale())
	for s := -cfg.MaxScale() + 1; s <= cfg.MaxScale(); s++ {
		cur := PositDigitsAt(cfg, s) - IEEEDigitsAt(f, s)
		if prev <= 0 && cur > 0 {
			lo = s
		}
		if prev > 0 && cur <= 0 {
			hi = s
		}
		prev = cur
	}
	return lo, hi
}

// MeasuredRelRoundoff empirically measures the worst relative rounding
// error of a codec over a binade by probing values, cross-validating
// the analytical digit curves (used by tests and the accuracy
// example). Returns the worst |x - round(x)| / |x| over n probes.
func MeasuredRelRoundoff(encode func(float64) float64, scale int, n int) float64 {
	worst := 0.0
	for i := 0; i < n; i++ {
		x := math.Ldexp(1+(float64(i)+0.5)/float64(n), scale)
		r := encode(x)
		if r == 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return math.Inf(1)
		}
		if e := math.Abs(x-r) / math.Abs(x); e > worst {
			worst = e
		}
	}
	return worst
}
