package analysis

import (
	"math"
	"testing"

	"positres/internal/ieee754"
	"positres/internal/posit"
)

func TestPositDigitsShape(t *testing.T) {
	cfg := posit.Std32
	// Peak accuracy at scale 0 (and its mirror region): fraction is
	// longest near |v| = 1 (paper §3.2 / Fig. 7).
	peak := PositDigitsAt(cfg, 0)
	if peak < 8 || peak > 9 {
		t.Errorf("posit32 peak digits %v, want ≈ 8.4 (28 fraction bits)", peak)
	}
	// Tapering: monotone non-increasing away from zero scale.
	for s := 0; s < cfg.MaxScale()-1; s++ {
		if PositDigitsAt(cfg, s+1) > PositDigitsAt(cfg, s) {
			t.Fatalf("digits increased from scale %d to %d", s, s+1)
		}
		if PositDigitsAt(cfg, -s-1) > PositDigitsAt(cfg, -s) {
			t.Fatalf("digits increased from scale %d to %d", -s, -s-1)
		}
	}
	// Out of range: zero digits.
	if PositDigitsAt(cfg, cfg.MaxScale()) != 0 || PositDigitsAt(cfg, -cfg.MaxScale()-1) != 0 {
		t.Error("digits outside dynamic range should be 0")
	}
}

func TestIEEEDigitsShape(t *testing.T) {
	f := ieee754.Binary32
	want := log10of2 * 24
	if IEEEDigitsAt(f, 0) != want || IEEEDigitsAt(f, 100) != want || IEEEDigitsAt(f, -126) != want {
		t.Error("normal-range digits should be constant")
	}
	if IEEEDigitsAt(f, 128) != 0 {
		t.Error("beyond EMax should be 0")
	}
	if got := IEEEDigitsAt(f, -127); got >= want || got <= 0 {
		t.Errorf("subnormal digits %v should taper", got)
	}
	if IEEEDigitsAt(f, -150) != 0 {
		t.Error("below subnormals should be 0")
	}
}

func TestDecimalAccuracyProfile(t *testing.T) {
	cfg := posit.Std32
	f := ieee754.Binary32
	prof := DecimalAccuracyProfile(cfg, f)
	if len(prof) != 2*cfg.MaxScale()+1 {
		t.Fatalf("profile length %d", len(prof))
	}
	// The posit beats binary32 near scale 0 (more fraction bits: 28 vs
	// 24) and loses far from it — the Fig. 7 crossovers.
	mid := prof[cfg.MaxScale()] // scale 0
	if mid.Scale != 0 || mid.PositDigits <= mid.IEEEDigits {
		t.Errorf("posit should win at scale 0: %+v", mid)
	}
	far := prof[cfg.MaxScale()+100] // scale 100
	if far.PositDigits >= far.IEEEDigits {
		t.Errorf("IEEE should win at scale 100: %+v", far)
	}
	lo, hi := CrossoverScales(cfg, f)
	if !(lo < 0 && hi > 0) {
		t.Errorf("crossovers (%d, %d) should bracket zero", lo, hi)
	}
	// posit32 vs binary32: advantage region is scale ∈ [-16, 16)
	// (regime ≤ 5 bits ⇒ fraction ≥ 24 bits... exact bounds from the
	// formula: posit wins while regimeLen+2 < 8, i.e. |r| small).
	if hi-lo < 8 || hi-lo > 64 {
		t.Errorf("advantage window [%d,%d) has implausible width", lo, hi)
	}
}

// TestDigitsMatchMeasuredRoundoff: the analytical digit counts
// correspond to the measured worst-case relative roundoff for both
// formats (digits = -log10(2·roundoff) within half a digit).
func TestDigitsMatchMeasuredRoundoff(t *testing.T) {
	cfg := posit.Std32
	for _, scale := range []int{-40, -17, -5, 0, 3, 18, 60, 100} {
		worst := MeasuredRelRoundoff(func(x float64) float64 {
			return posit.Float64ToNearest(cfg, x)
		}, scale, 400)
		if math.IsInf(worst, 0) {
			t.Fatalf("scale %d out of range unexpectedly", scale)
		}
		wantDigits := PositDigitsAt(cfg, scale)
		gotDigits := -math.Log10(2 * worst)
		if math.Abs(gotDigits-wantDigits) > 0.8 {
			t.Errorf("scale %d: analytical %v digits, measured %v", scale, wantDigits, gotDigits)
		}
	}
	f := ieee754.Binary32
	for _, scale := range []int{-30, 0, 30} {
		worst := MeasuredRelRoundoff(func(x float64) float64 {
			return f.Decode(f.Encode(x))
		}, scale, 400)
		wantDigits := IEEEDigitsAt(f, scale)
		gotDigits := -math.Log10(2 * worst)
		if math.Abs(gotDigits-wantDigits) > 0.8 {
			t.Errorf("ieee scale %d: analytical %v digits, measured %v", scale, wantDigits, gotDigits)
		}
	}
}
