package analysis

import (
	"math"
	"sort"

	"positres/internal/posit"
)

// Regime-size distribution analysis, backing the paper's §5.4.3
// discussion: "Because the size of the regime depends on the magnitude
// of the posit, the width of the error distribution depends on the
// variance and median of the data. Datasets with large variances and
// medians have a wider error distribution since there are more values
// with larger numbers of regime bits."

// RegimeHistogram counts, for each regime run length k, how many data
// values encode to a posit with that k (zero values are skipped, as in
// the campaign's selection).
func RegimeHistogram(cfg posit.Config, data []float64) map[int]int {
	out := map[int]int{}
	for _, v := range data {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		b := posit.EncodeFloat64(cfg, v)
		out[posit.DecodeFields(cfg, b).K]++
	}
	return out
}

// RegimeSpread summarizes a regime histogram: the number of distinct
// regime sizes carrying at least minShare of the mass, and the
// mass-weighted mean and standard deviation of k. A large spread means
// R_k moves across many bit positions — the paper's "wider error
// distribution".
type RegimeSpread struct {
	Distinct int     // regime sizes with >= minShare of the values
	MeanK    float64 // average regime run length
	StdK     float64 // standard deviation of the run length
	MaxK     int     // largest regime observed
}

// SpreadOf reduces a histogram with the given minimum share (e.g.
// 0.01 = sizes holding at least 1% of the values).
func SpreadOf(hist map[int]int, minShare float64) RegimeSpread {
	total := 0
	for _, c := range hist {
		total += c
	}
	s := RegimeSpread{}
	if total == 0 {
		return s
	}
	var sum, sumSq float64
	ks := make([]int, 0, len(hist))
	for k := range hist {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		c := hist[k]
		share := float64(c) / float64(total)
		if share >= minShare {
			s.Distinct++
		}
		sum += float64(k * c)
		sumSq += float64(k * k * c)
		if k > s.MaxK {
			s.MaxK = k
		}
	}
	s.MeanK = sum / float64(total)
	s.StdK = math.Sqrt(sumSq/float64(total) - s.MeanK*s.MeanK)
	return s
}
