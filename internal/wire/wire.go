// Package wire implements the packed binary trial encoding of the
// positserve worker protocol: length-prefixed frames carrying the
// trial records of one shard (docs/WIRE.md is the normative format
// specification).
//
// A frame is a little-endian length prefix, a payload and a CRC-32
// (IEEE) of the payload — the same integrity discipline the CSV path
// applies with its X-Positres-Crc32 trailer, moved inside the frame so
// a binary shard response is self-verifying. The payload packs the
// shard-constant strings (dataset field, codec, the bit-field name
// vocabulary) once per frame and every trial row as varints plus five
// fixed-width float64 bit patterns, so the encoding is lossless by
// construction: DecodeFrame(EncodeFrame(trials)) reproduces the exact
// Trial values, bit for bit, which is what keeps distributed campaign
// CSVs byte-identical to local ones.
//
// CSV remains the only export and rendering format (journal records,
// GET /v1/campaigns/{id}/results); frames exist strictly on the
// coordinator↔worker hop and are negotiated per request via the
// Accept header (see Accepts), so an old worker or coordinator falls
// back to CSV without configuration.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"

	"positres/internal/core"
)

// ContentType is the media type of a binary trial frame, offered by
// the coordinator in Accept and announced by the worker in
// Content-Type. Anything else on the shard hop means CSV.
const ContentType = "application/x-positres-trials"

// Version is the wire format version this package encodes. A decoder
// rejects every other value with ErrVersion — version negotiation is
// deliberately all-or-nothing per frame (docs/WIRE.md, "Compatibility
// policy"): a mixed fleet falls back to CSV rather than guessing.
const Version = 1

// magic opens every payload; it spells "PTRW" (posit trial wire) so a
// frame is recognizable in a hex dump and a CSV body mis-routed into
// the binary decoder fails immediately with ErrMagic.
const magic = "PTRW"

// MaxFrameBytes bounds the declared frame length ReadFrame will
// honor (1 GiB — far above any real shard, small enough to refuse a
// corrupted length prefix before allocating).
const MaxFrameBytes = 1 << 30

// maxStringLen bounds each packed string (field key, codec name,
// bit-field name); real values are tens of bytes.
const maxStringLen = 1 << 16

// maxNames bounds the bit-field name table: a row addresses its name
// with 7 bits of the meta byte.
const maxNames = 128

// Decode errors, one per failure class. All are returned wrapped with
// positional detail; match with errors.Is. Every one of them is a
// retryable shard failure at the runner — a damaged frame is refused
// whole, never partially merged.
var (
	// ErrTruncated means the data ends before the declared frame does.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrMagic means the payload does not open with "PTRW".
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion means the frame was encoded by an unsupported format
	// version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrChecksum means the payload does not match its CRC-32.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrMalformed means the payload structure is inconsistent
	// (out-of-range varint, bad string length, name index past the
	// table, trailing garbage).
	ErrMalformed = errors.New("wire: malformed frame")
)

// trialWireHeader is the logical column list of one trial row, in
// wire order. It deliberately mirrors core's CSV trialHeader —
// positlint's csvheader rule cross-checks both registries against
// core.Trial, so adding a Trial field without extending the wire
// encoding fails tier-1.
var trialWireHeader = []string{
	"field", "codec", "bit", "seq", "index",
	"orig_value", "repr_value", "orig_bits", "faulty_bits", "faulty_value",
	"bit_field", "regime_k", "abs_err", "rel_err", "catastrophic",
}

// Accepts reports whether an Accept header value asks for the binary
// trial encoding: any comma-separated element whose media type (the
// part before parameters) is exactly ContentType. Wildcards do not
// opt in — CSV is the default a generic client gets.
func Accepts(header string) bool {
	for _, part := range strings.Split(header, ",") {
		mediaType, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(mediaType) == ContentType {
			return true
		}
	}
	return false
}

// EncodeFrame packs trials into one binary frame. All trials must
// share one (Field, Codec) pair — the shard invariant — and use at
// most maxNames distinct bit-field names; violations are encoding
// errors, not silent truncation. An empty slice encodes a valid empty
// frame.
func EncodeFrame(trials []core.Trial) ([]byte, error) {
	return AppendFrame(nil, trials)
}

// AppendFrame appends the frame encoding of trials to dst and returns
// the extended slice, allowing callers on the hot path to reuse one
// buffer across shards. See EncodeFrame for the input invariants.
func AppendFrame(dst []byte, trials []core.Trial) ([]byte, error) {
	field, codec := "", ""
	if len(trials) > 0 {
		field, codec = trials[0].Field, trials[0].Codec
	}
	if len(field) > maxStringLen || len(codec) > maxStringLen {
		return nil, fmt.Errorf("%w: field/codec name over %d bytes", ErrMalformed, maxStringLen)
	}

	// Bit-field name vocabulary: a handful of strings (sign, regime,
	// exponent, fraction, mantissa, ...) shared by every row.
	var names []string
	nameIdx := map[string]int{}
	rowIdx := make([]int, len(trials))
	for i := range trials {
		tr := &trials[i]
		if tr.Field != field || tr.Codec != codec {
			return nil, fmt.Errorf("%w: mixed (field, codec) in one frame: (%s, %s) vs (%s, %s)",
				ErrMalformed, tr.Field, tr.Codec, field, codec)
		}
		j, ok := nameIdx[tr.FieldName]
		if !ok {
			j = len(names)
			if j >= maxNames {
				return nil, fmt.Errorf("%w: more than %d distinct bit-field names", ErrMalformed, maxNames)
			}
			if len(tr.FieldName) > maxStringLen {
				return nil, fmt.Errorf("%w: bit-field name over %d bytes", ErrMalformed, maxStringLen)
			}
			nameIdx[tr.FieldName] = j
			names = append(names, tr.FieldName)
		}
		rowIdx[i] = j
	}

	// Payload, then patch the length prefix and append the CRC.
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix placeholder
	p := len(dst)                 // payload start
	dst = append(dst, magic...)
	dst = append(dst, Version, byte(len(trialWireHeader)))
	dst = appendString(dst, field)
	dst = appendString(dst, codec)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, nm := range names {
		dst = appendString(dst, nm)
	}
	dst = binary.AppendUvarint(dst, uint64(len(trials)))
	var fixed [40]byte
	for i := range trials {
		tr := &trials[i]
		dst = binary.AppendUvarint(dst, uint64(tr.Bit))
		dst = binary.AppendUvarint(dst, uint64(tr.Seq))
		dst = binary.AppendUvarint(dst, uint64(tr.Index))
		dst = binary.AppendUvarint(dst, tr.OrigBits)
		dst = binary.AppendUvarint(dst, tr.FaultyBits)
		meta := byte(rowIdx[i]) << 1
		if tr.Catastrophic {
			meta |= 1
		}
		dst = append(dst, meta)
		dst = binary.AppendVarint(dst, int64(tr.RegimeK))
		binary.LittleEndian.PutUint64(fixed[0:], math.Float64bits(tr.OrigValue))
		binary.LittleEndian.PutUint64(fixed[8:], math.Float64bits(tr.ReprValue))
		binary.LittleEndian.PutUint64(fixed[16:], math.Float64bits(tr.FaultyVal))
		binary.LittleEndian.PutUint64(fixed[24:], math.Float64bits(tr.AbsErr))
		binary.LittleEndian.PutUint64(fixed[32:], math.Float64bits(tr.RelErr))
		dst = append(dst, fixed[:]...)
	}
	crc := crc32.ChecksumIEEE(dst[p:])
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(dst)-p))
	return dst, nil
}

// appendString appends a uvarint length followed by the string bytes.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeFrame decodes one frame from the front of data, returning the
// trials and the number of bytes consumed (length prefix included).
// The CRC is verified before any row is interpreted, the version
// before anything else in the payload, and every length and index is
// bounds-checked, so arbitrary input cannot do worse than return an
// error (FuzzDecodeFrame pins this).
func DecodeFrame(data []byte) ([]core.Trial, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("%w: %d bytes, need 4-byte length prefix", ErrTruncated, len(data))
	}
	frameLen := binary.LittleEndian.Uint32(data)
	if frameLen > MaxFrameBytes {
		return nil, 0, fmt.Errorf("%w: declared length %d exceeds %d", ErrMalformed, frameLen, MaxFrameBytes)
	}
	if uint64(len(data)-4) < uint64(frameLen) {
		return nil, 0, fmt.Errorf("%w: declared length %d, %d bytes available", ErrTruncated, frameLen, len(data)-4)
	}
	consumed := 4 + int(frameLen)
	if frameLen < 4 {
		return nil, 0, fmt.Errorf("%w: frame length %d below CRC size", ErrMalformed, frameLen)
	}
	payload := data[4 : consumed-4]
	wantCRC := binary.LittleEndian.Uint32(data[consumed-4:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, 0, fmt.Errorf("%w: crc32 %08x, frame announces %08x", ErrChecksum, got, wantCRC)
	}

	d := decoder{buf: payload}
	if len(payload) < len(magic)+2 {
		return nil, 0, fmt.Errorf("%w: payload of %d bytes", ErrMalformed, len(payload))
	}
	if string(payload[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("%w: %q", ErrMagic, payload[:len(magic)])
	}
	d.off = len(magic)
	if v := payload[d.off]; v != Version {
		return nil, 0, fmt.Errorf("%w: frame version %d, this decoder speaks %d", ErrVersion, v, Version)
	}
	if cols := payload[d.off+1]; int(cols) != len(trialWireHeader) {
		return nil, 0, fmt.Errorf("%w: frame carries %d columns per row, this decoder maps %d",
			ErrMalformed, cols, len(trialWireHeader))
	}
	d.off += 2

	field := d.str()
	codec := d.str()
	nNames := d.uvarint()
	if d.err == nil && nNames > maxNames {
		d.fail("name table of %d entries exceeds %d", nNames, maxNames)
	}
	names := make([]string, 0, 8)
	for i := uint64(0); d.err == nil && i < nNames; i++ {
		names = append(names, d.str())
	}
	nRows := d.uvarint()
	if d.err != nil {
		return nil, 0, d.err
	}
	// Each row is at least 7 varint/meta bytes plus 40 fixed bytes;
	// refuse a row count the remaining payload cannot possibly hold
	// before allocating for it.
	if remaining := uint64(len(d.buf) - d.off); nRows > remaining/41 {
		return nil, 0, fmt.Errorf("%w: %d rows declared, %d payload bytes remain", ErrMalformed, nRows, remaining)
	}
	trials := make([]core.Trial, nRows)
	for i := range trials {
		tr := &trials[i]
		tr.Field = field
		tr.Codec = codec
		tr.Bit = d.intv()
		tr.Seq = d.intv()
		tr.Index = d.intv()
		tr.OrigBits = d.uvarint()
		tr.FaultyBits = d.uvarint()
		meta := d.byte()
		tr.Catastrophic = meta&1 != 0
		if idx := int(meta >> 1); d.err == nil {
			if idx >= len(names) {
				d.fail("row %d bit-field name index %d past table of %d", i, idx, len(names))
			} else {
				tr.FieldName = names[idx]
			}
		}
		tr.RegimeK = d.varint()
		tr.OrigValue = d.float()
		tr.ReprValue = d.float()
		tr.FaultyVal = d.float()
		tr.AbsErr = d.float()
		tr.RelErr = d.float()
		if d.err != nil {
			return nil, 0, d.err
		}
	}
	if d.off != len(d.buf) {
		return nil, 0, fmt.Errorf("%w: %d trailing payload bytes after last row", ErrMalformed, len(d.buf)-d.off)
	}
	return trials, consumed, nil
}

// ReadFrame reads exactly one frame from r (a streaming HTTP body),
// returning the trials and the total bytes read. The length prefix is
// validated against MaxFrameBytes before the body is buffered.
func ReadFrame(r io.Reader) ([]core.Trial, int, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: length prefix: %v", ErrTruncated, err)
	}
	frameLen := binary.LittleEndian.Uint32(prefix[:])
	if frameLen > MaxFrameBytes {
		return nil, 0, fmt.Errorf("%w: declared length %d exceeds %d", ErrMalformed, frameLen, MaxFrameBytes)
	}
	buf := make([]byte, 4+frameLen)
	copy(buf, prefix[:])
	n, err := io.ReadFull(r, buf[4:])
	if err != nil {
		return nil, 4 + n, fmt.Errorf("%w: %d of %d frame bytes: %v", ErrTruncated, n, frameLen, err)
	}
	trials, consumed, err := DecodeFrame(buf)
	return trials, consumed, err
}

// decoder is a bounds-checked cursor over one payload. The first
// failure sticks in err and turns every later read into a no-op, so
// row loops stay branch-light and check once per row.
type decoder struct {
	buf []byte
	off int
	err error
}

// fail records the first error with positional context.
func (d *decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: offset %d: %s", ErrMalformed, d.off, fmt.Sprintf(format, args...))
	}
}

// byte reads one byte.
func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("unexpected end of payload")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// uvarint reads one unsigned varint.
func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// varint reads one zigzag varint as an int.
func (d *decoder) varint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return int(v)
}

// intv reads a uvarint that must fit a non-negative int.
func (d *decoder) intv() int {
	v := d.uvarint()
	if d.err == nil && v > math.MaxInt32 {
		d.fail("value %d out of int range", v)
		return 0
	}
	return int(v)
}

// float reads one fixed-width little-endian float64 bit pattern.
func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("unexpected end of payload in float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// str reads one length-prefixed string.
func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail("string of %d bytes exceeds %d", n, maxStringLen)
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.fail("string of %d bytes overruns payload", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
