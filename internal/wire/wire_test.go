package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"positres/internal/core"
	"positres/internal/numfmt"
)

// sampleTrials builds a deterministic, representative trial slice:
// real posit32 encode/decode round trips with special values mixed in
// (NaN faulty values, zero, negative), exercising every field of
// core.Trial.
func sampleTrials(t *testing.T, n int) []core.Trial {
	t.Helper()
	codec, err := numfmt.Lookup("posit32")
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1.5, -2.25, 0.001953125, 12345.678, -0.75, 3.0e8, 0}
	names := []string{"sign", "regime", "exponent", "fraction"}
	out := make([]core.Trial, n)
	for i := range out {
		v := values[i%len(values)]
		bits := codec.Encode(v)
		tr := &out[i]
		tr.Field = "Hurricane/Vf30"
		tr.Codec = codec.Name()
		tr.Bit = i % codec.Width()
		tr.Seq = i
		tr.Index = i * 7
		tr.OrigValue = v
		tr.ReprValue = codec.Decode(bits)
		tr.OrigBits = bits
		tr.FaultyBits = bits ^ (1 << uint(i%codec.Width()))
		tr.FaultyVal = codec.Decode(tr.FaultyBits)
		tr.FieldName = names[i%len(names)]
		tr.RegimeK = i % 5
		tr.AbsErr = math.Abs(tr.FaultyVal - tr.ReprValue)
		tr.RelErr = tr.AbsErr / math.Abs(tr.ReprValue)
		tr.Catastrophic = i%3 == 0
		if i%11 == 5 {
			tr.FaultyVal = math.NaN()
			tr.AbsErr = math.NaN()
			tr.RelErr = math.Inf(1)
			tr.Catastrophic = true
		}
	}
	return out
}

// trialsEqual compares two trials bit-exactly (NaN payloads included),
// the lossless guarantee the wire format promises.
func trialsEqual(a, b *core.Trial) bool {
	fb := math.Float64bits
	return a.Field == b.Field && a.Codec == b.Codec &&
		a.Bit == b.Bit && a.Seq == b.Seq && a.Index == b.Index &&
		fb(a.OrigValue) == fb(b.OrigValue) && fb(a.ReprValue) == fb(b.ReprValue) &&
		a.OrigBits == b.OrigBits && a.FaultyBits == b.FaultyBits &&
		fb(a.FaultyVal) == fb(b.FaultyVal) &&
		a.FieldName == b.FieldName && a.RegimeK == b.RegimeK &&
		fb(a.AbsErr) == fb(b.AbsErr) && fb(a.RelErr) == fb(b.RelErr) &&
		a.Catastrophic == b.Catastrophic
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 313} {
		in := sampleTrials(t, n)
		frame, err := EncodeFrame(in)
		if err != nil {
			t.Fatalf("EncodeFrame(%d trials): %v", n, err)
		}
		out, consumed, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame(%d trials): %v", n, err)
		}
		if consumed != len(frame) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", consumed, len(frame))
		}
		if len(out) != len(in) {
			t.Fatalf("round trip: %d trials in, %d out", len(in), len(out))
		}
		for i := range in {
			if !trialsEqual(&in[i], &out[i]) {
				t.Fatalf("trial %d drifted over the wire:\n in: %+v\nout: %+v", i, in[i], out[i])
			}
		}
	}
}

// TestRoundTripMatchesCSV pins the core property the protocol
// migration rests on: binary and CSV transport carry the same trials,
// so the final CSVs cannot depend on which encoding a shard used.
func TestRoundTripMatchesCSV(t *testing.T) {
	in := sampleTrials(t, 64)
	frame, err := EncodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	viaWire, _, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := core.WriteTrialsCSV(&csvBuf, in); err != nil {
		t.Fatal(err)
	}
	viaCSV, err := core.ReadTrialsCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	var w1, w2 bytes.Buffer
	if err := core.WriteTrialsCSV(&w1, viaWire); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteTrialsCSV(&w2, viaCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("CSV render of wire-transported trials differs from CSV-transported trials")
	}
}

func TestReadFrame(t *testing.T) {
	in := sampleTrials(t, 9)
	frame, err := EncodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	// Trailing bytes after the frame must be left unread.
	stream := bytes.NewReader(append(append([]byte{}, frame...), "extra"...))
	out, n, err := ReadFrame(stream)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if n != len(frame) {
		t.Fatalf("ReadFrame read %d bytes, frame is %d", n, len(frame))
	}
	if stream.Len() != len("extra") {
		t.Fatalf("ReadFrame consumed past the frame: %d bytes remain", stream.Len())
	}
	if len(out) != len(in) {
		t.Fatalf("ReadFrame: %d trials, want %d", len(out), len(in))
	}
}

func TestEncodeRejectsMixedShard(t *testing.T) {
	in := sampleTrials(t, 4)
	in[2].Codec = "posit16"
	if _, err := EncodeFrame(in); !errors.Is(err, ErrMalformed) {
		t.Fatalf("mixed-codec frame: err = %v, want ErrMalformed", err)
	}
	in = sampleTrials(t, 4)
	in[1].Field = "other/field"
	if _, err := EncodeFrame(in); !errors.Is(err, ErrMalformed) {
		t.Fatalf("mixed-field frame: err = %v, want ErrMalformed", err)
	}
}

// TestDecodeDamagedFrames is the fault table of docs/WIRE.md: every
// damage class maps to a sentinel error, and every sentinel error is a
// retryable shard failure at the runner (never merged data).
func TestDecodeDamagedFrames(t *testing.T) {
	good, err := EncodeFrame(sampleTrials(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty input", func(b []byte) []byte { return nil }, ErrTruncated},
		{"short prefix", func(b []byte) []byte { return b[:3] }, ErrTruncated},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"truncated crc", func(b []byte) []byte { return b[:len(b)-2] }, ErrTruncated},
		{"flipped payload bit", func(b []byte) []byte {
			b[len(b)/2] ^= 0x10
			return b
		}, ErrChecksum},
		{"flipped crc bit", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}, ErrChecksum},
		{"bad magic", func(b []byte) []byte {
			b[4] = 'X'
			return fixCRC(b)
		}, ErrMagic},
		{"future version", func(b []byte) []byte {
			b[8] = Version + 1
			return fixCRC(b)
		}, ErrVersion},
		{"column count skew", func(b []byte) []byte {
			b[9] = byte(len(trialWireHeader) + 1)
			return fixCRC(b)
		}, ErrMalformed},
		{"oversized declared length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, MaxFrameBytes+1)
			return b
		}, ErrMalformed},
		{"length prefix below crc", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, 2)
			return b[:6]
		}, ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte{}, good...))
			if _, _, err := DecodeFrame(b); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame(%s): err = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

// fixCRC recomputes a mutated frame's CRC so structural damage is
// tested on its own, not masked by the checksum gate.
func fixCRC(frame []byte) []byte {
	payload := frame[4 : len(frame)-4]
	binary.LittleEndian.PutUint32(frame[len(frame)-4:], crc32.ChecksumIEEE(payload))
	return frame
}

func TestAccepts(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{ContentType, true},
		{ContentType + ", text/csv", true},
		{"text/csv, " + ContentType, true},
		{ContentType + ";v=1", true},
		{" " + ContentType + " ; q=0.9, text/csv", true},
		{"text/csv", false},
		{"", false},
		{"*/*", false},
		{"application/*", false},
		{ContentType + "x", false},
	}
	for _, tc := range cases {
		if got := Accepts(tc.header); got != tc.want {
			t.Errorf("Accepts(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	in := sampleTrials(t, 33)
	first, err := EncodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 2*len(first))
	buf, err = AppendFrame(buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, first) {
		t.Fatal("AppendFrame into a preallocated buffer produced different bytes")
	}
	// Appending after existing content leaves that content intact.
	withPrefix, err := AppendFrame([]byte("head"), in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(withPrefix), "head") || !bytes.Equal(withPrefix[4:], first) {
		t.Fatal("AppendFrame clobbered existing buffer content")
	}
}

// TestWireHeaderMatchesCSVHeader keeps the two schema registries in
// lockstep by construction (positlint's csvheader rule enforces the
// same agreement statically; this is the runtime cross-check).
func TestWireHeaderMatchesCSVHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := core.WriteTrialsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	csvHeader := strings.TrimRight(buf.String(), "\r\n")
	if got := strings.Join(trialWireHeader, ","); got != csvHeader {
		t.Fatalf("trialWireHeader = %s\ncore CSV header = %s", got, csvHeader)
	}
}
