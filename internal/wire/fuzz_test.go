package wire

import (
	"bytes"
	"testing"

	"positres/internal/core"
)

// FuzzDecodeFrame drives arbitrary bytes through the frame decoder.
// The decoder's contract under hostile input is narrow: return an
// error or a valid trial slice, never panic, never over-consume, and
// anything it does accept must re-encode to a decodable frame (the
// round-trip closure property). `make fuzz-short` runs this alongside
// the posit decoder fuzzers; scripts/ci.sh runs a seed-corpus smoke.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with real frames (valid, empty) and near-misses so the
	// fuzzer starts at the format boundary instead of random noise.
	good, err := EncodeFrame([]core.Trial{{
		Field: "Nyx/temperature", Codec: "posit32",
		Bit: 7, Seq: 3, Index: 11,
		OrigValue: 1.5, ReprValue: 1.5,
		OrigBits: 0x38000000, FaultyBits: 0x38000080, FaultyVal: 1.5000019073486328,
		FieldName: "fraction", RegimeK: 1,
		AbsErr: 1.9073486328125e-06, RelErr: 1.2715657552083333e-06,
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	empty, err := EncodeFrame(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add(good[:len(good)-3])
	f.Add([]byte("PTRW"))
	f.Add([]byte{4, 0, 0, 0, 'P', 'T', 'R', 'W'})

	f.Fuzz(func(t *testing.T, data []byte) {
		trials, consumed, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if consumed < 8 || consumed > len(data) {
			t.Fatalf("accepted frame consumed %d of %d bytes", consumed, len(data))
		}
		// Whatever was accepted must survive a re-encode/decode cycle
		// byte-for-byte at the trial level.
		frame, err := EncodeFrame(trials)
		if err != nil {
			t.Fatalf("re-encode of accepted trials failed: %v", err)
		}
		again, _, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trials failed: %v", err)
		}
		if len(again) != len(trials) {
			t.Fatalf("round trip changed row count: %d -> %d", len(trials), len(again))
		}
		var a, b bytes.Buffer
		if err := core.WriteTrialsCSV(&a, trials); err != nil {
			t.Fatal(err)
		}
		if err := core.WriteTrialsCSV(&b, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("round trip changed trial content")
		}
	})
}
