package wire

import (
	"encoding/hex"
	"os"
	"strings"
	"testing"

	"positres/internal/bitflip"
	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/qcat"
)

// docExampleHex is the worked example frame of docs/WIRE.md ("Worked
// example"), byte for byte. The doc and the encoder must agree: if
// the format changes, this constant, the doc's hex dump and the
// Version constant all change together.
const docExampleHex = "5600000050545257010f0a64656d6f2f6669656c64" +
	"06706f7369743801086672616374696f6e01010004444600" +
	"02000000000000f83f000000000000f83f000000000000fc3f" +
	"000000000000d03f555555555555c53feed21a1e"

// docExampleTrial rebuilds the example's single trial the way the
// campaign engine would: a real posit8 encode, a bit-1 flip, a real
// decode and the standard error metrics — so the doc's narrative
// ("flip bit 1 of posit8(1.5)") is executable, not illustrative.
func docExampleTrial(t *testing.T) core.Trial {
	t.Helper()
	codec, err := numfmt.Lookup("posit8")
	if err != nil {
		t.Fatal(err)
	}
	const v = 1.5
	bits := codec.Encode(v)
	faulty := bitflip.Flip(bits, 1)
	tr := core.Trial{
		Field: "demo/field", Codec: codec.Name(),
		Bit: 1, Seq: 0, Index: 4,
		OrigValue: v, ReprValue: codec.Decode(bits),
		OrigBits: bits, FaultyBits: faulty, FaultyVal: codec.Decode(faulty),
		FieldName: codec.FieldAt(bits, 1),
	}
	if sz, ok := codec.(numfmt.RegimeSizer); ok {
		tr.RegimeK = sz.RegimeK(bits)
	}
	p := qcat.Point(v, tr.FaultyVal)
	tr.AbsErr, tr.RelErr, tr.Catastrophic = p.AbsErr, p.RelErr, p.Catastrophic
	return tr
}

// TestDocExampleRoundTrips pins docs/WIRE.md's worked example to the
// implementation in both directions: encoding the example trial
// yields exactly the documented bytes, and decoding the documented
// bytes yields exactly the example trial.
func TestDocExampleRoundTrips(t *testing.T) {
	want, err := hex.DecodeString(docExampleHex)
	if err != nil {
		t.Fatalf("docExampleHex is not valid hex: %v", err)
	}
	tr := docExampleTrial(t)

	frame, err := EncodeFrame([]core.Trial{tr})
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(frame); got != docExampleHex {
		t.Fatalf("EncodeFrame no longer matches docs/WIRE.md's worked example;\n got %s\nwant %s\nupdate the doc and this constant together", got, docExampleHex)
	}

	trials, consumed, err := DecodeFrame(want)
	if err != nil {
		t.Fatalf("DecodeFrame(doc example): %v", err)
	}
	if consumed != len(want) || len(trials) != 1 {
		t.Fatalf("doc example: consumed %d of %d bytes, %d trials", consumed, len(want), len(trials))
	}
	if !trialsEqual(&trials[0], &tr) {
		t.Fatalf("doc example decoded to %+v, want %+v", trials[0], tr)
	}

	// Sanity-pin the narrative numbers the doc spells out.
	if tr.OrigBits != 0x44 || tr.FaultyBits != 0x46 || tr.FaultyVal != 1.75 {
		t.Fatalf("doc example trial drifted: %+v", tr)
	}
}

// TestDocContainsExampleHex closes the doc↔code loop from the other
// side: docs/WIRE.md's "as one hex string" block must carry exactly
// docExampleHex (the doc wraps it across lines; whitespace is
// insignificant). Together with TestDocExampleRoundTrips this makes
// the published spec executable — the doc cannot drift from the
// encoder without a test failing.
func TestDocContainsExampleHex(t *testing.T) {
	raw, err := os.ReadFile("../../docs/WIRE.md")
	if err != nil {
		t.Fatalf("reading docs/WIRE.md: %v", err)
	}
	squeezed := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\r' || r == '\t' {
			return -1
		}
		return r
	}, string(raw))
	if !strings.Contains(squeezed, docExampleHex) {
		t.Fatal("docs/WIRE.md no longer contains the worked-example frame hex; update the doc and docExampleHex together")
	}
}
