package spec

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// valid returns a minimal valid spec for mutation in table tests.
func valid() *CampaignSpec {
	return &CampaignSpec{Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit16"}}
}

func TestValidateDefaults(t *testing.T) {
	s := valid()
	if verr := s.Validate(); verr != nil {
		t.Fatalf("Validate: %v", verr)
	}
	if s.N != 100_000 {
		t.Errorf("N default = %d, want 100000", s.N)
	}
	if s.TrialsPerBit != 313 {
		t.Errorf("TrialsPerBit default = %d, want 313", s.TrialsPerBit)
	}
	if s.Seed != 1 {
		t.Errorf("Seed default = %d, want 1", s.Seed)
	}
	if s.BitsPerShard != 8 {
		t.Errorf("BitsPerShard default = %d, want 8", s.BitsPerShard)
	}
	if s.MaxRetries == nil || *s.MaxRetries != 2 {
		t.Errorf("MaxRetries default = %v, want 2", s.MaxRetries)
	}
	if s.ShardTimeout != "10m" {
		t.Errorf("ShardTimeout default = %q, want 10m", s.ShardTimeout)
	}
	if got := s.ShardTimeoutDuration(); got != 10*time.Minute {
		t.Errorf("ShardTimeoutDuration = %v, want 10m", got)
	}
	if got := s.MaxRetriesValue(); got != 2 {
		t.Errorf("MaxRetriesValue = %d, want 2", got)
	}
	// Idempotent: re-validating a validated spec changes nothing.
	before := *s
	if verr := s.Validate(); verr != nil {
		t.Fatalf("revalidate: %v", verr)
	}
	if s.N != before.N || s.ShardTimeout != before.ShardTimeout {
		t.Errorf("Validate is not idempotent: %+v vs %+v", *s, before)
	}
}

func TestValidateErrors(t *testing.T) {
	neg := -1
	cases := []struct {
		name    string
		mutate  func(*CampaignSpec)
		code    string
		message string // substring
	}{
		{"no fields", func(s *CampaignSpec) { s.Fields = nil }, CodeBadRequest, `"fields"`},
		{"no formats", func(s *CampaignSpec) { s.Formats = nil }, CodeBadRequest, `"formats"`},
		{"negative n", func(s *CampaignSpec) { s.N = -5 }, CodeBadRequest, `"n"`},
		{"negative trials", func(s *CampaignSpec) { s.TrialsPerBit = -1 }, CodeBadRequest, `"trials_per_bit"`},
		{"negative bits per shard", func(s *CampaignSpec) { s.BitsPerShard = -2 }, CodeBadRequest, `"bits_per_shard"`},
		{"negative retries", func(s *CampaignSpec) { s.MaxRetries = &neg }, CodeBadRequest, `"max_retries"`},
		{"bad timeout", func(s *CampaignSpec) { s.ShardTimeout = "soon" }, CodeBadRequest, `"shard_timeout"`},
		{"negative timeout", func(s *CampaignSpec) { s.ShardTimeout = "-3s" }, CodeBadRequest, `"shard_timeout"`},
		{"unknown field", func(s *CampaignSpec) { s.Fields = []string{"NoSuch/field"} }, CodeUnknownField, "NoSuch/field"},
		{"unknown format", func(s *CampaignSpec) { s.Formats = []string{"posit7"} }, CodeUnknownFormat, "posit7"},
		{"duplicate pair", func(s *CampaignSpec) { s.Formats = []string{"posit16", "posit16"} }, CodeBadRequest, "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := valid()
			c.mutate(s)
			verr := s.Validate()
			if verr == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if verr.Code != c.code {
				t.Errorf("code = %q, want %q", verr.Code, c.code)
			}
			if !strings.Contains(verr.Message, c.message) {
				t.Errorf("message %q does not mention %q", verr.Message, c.message)
			}
			if verr.Error() != verr.Message {
				t.Errorf("Error() = %q, want the message", verr.Error())
			}
		})
	}
}

// TestWireCompat pins the JSON wire format of /v1/campaigns: the tags
// must match the pre-CampaignSpec request body exactly, so existing
// clients and persisted job.json files keep decoding.
func TestWireCompat(t *testing.T) {
	body := `{
		"fields": ["CESM/CLOUD", "HACC/vx"],
		"formats": ["posit16", "ieee32"],
		"n": 400,
		"trials_per_bit": 3,
		"seed": 7,
		"keep_zeros": true,
		"bits_per_shard": 4,
		"max_retries": 1,
		"shard_timeout": "30s"
	}`
	var s CampaignSpec
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if verr := s.Validate(); verr != nil {
		t.Fatalf("Validate: %v", verr)
	}
	if len(s.Fields) != 2 || s.Fields[1] != "HACC/vx" || s.N != 400 || s.Seed != 7 ||
		!s.KeepZeros || s.BitsPerShard != 4 || s.MaxRetriesValue() != 1 ||
		s.ShardTimeoutDuration() != 30*time.Second {
		t.Fatalf("decoded spec = %+v", s)
	}

	raw, err := json.Marshal(&s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, tag := range []string{`"fields"`, `"formats"`, `"n"`, `"trials_per_bit"`,
		`"seed"`, `"keep_zeros"`, `"bits_per_shard"`, `"max_retries"`, `"shard_timeout"`} {
		if !strings.Contains(string(raw), tag) {
			t.Errorf("encoded spec is missing wire tag %s: %s", tag, raw)
		}
	}
}

func TestTotalShards(t *testing.T) {
	s := &CampaignSpec{
		Fields:       []string{"CESM/CLOUD", "HACC/vx"},
		Formats:      []string{"posit16", "ieee32"},
		BitsPerShard: 4,
	}
	if verr := s.Validate(); verr != nil {
		t.Fatalf("Validate: %v", verr)
	}
	// Two fields × (16-bit → 4 shards, 32-bit → 8 shards) = 24.
	if got := s.TotalShards(); got != 24 {
		t.Errorf("TotalShards = %d, want 24", got)
	}
	s.BitsPerShard = 0 // callers may ask before Validate; 0 falls back to 8
	if got := s.TotalShards(); got != 2*(2+4) {
		t.Errorf("TotalShards(default granularity) = %d, want 12", got)
	}
}
