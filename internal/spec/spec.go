// Package spec defines the one canonical description of a
// fault-injection campaign: CampaignSpec. Before this package existed
// the same dozen knobs lived in four divergent shapes — core.Config,
// runner.Config, positserve's JSON request body and positcampaign's
// flag set — and grew by field-by-field copying between them. Now the
// JSON body of POST /v1/campaigns *is* a CampaignSpec (the wire tags
// are unchanged, so existing clients keep working), positcampaign
// builds one from its flags, internal/runner consumes it directly,
// and core derives its engine Config from it in exactly one place
// (core.ConfigFromSpec). Validate applies the documented defaults and
// reports violations with the stable machine-readable error codes
// shared by the CLI and the HTTP error envelope.
package spec

import (
	"fmt"
	"time"

	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

// Stable validation error codes. These are API surface: positserve
// clients dispatch on them (they appear verbatim in the JSON error
// envelope's "code" field) and positcampaign prints them, so existing
// values never change meaning. docs/SERVICE.md is the catalogue.
const (
	// CodeBadRequest covers malformed values: missing required lists,
	// non-positive counts, unparseable durations, duplicate pairs.
	CodeBadRequest = "bad_request"
	// CodeUnknownField means a field key is not in the sdrbench
	// registry.
	CodeUnknownField = "unknown_field"
	// CodeUnknownFormat means a format name is not in the numfmt
	// registry.
	CodeUnknownFormat = "unknown_format"
)

// Error is a campaign-spec validation failure with a stable code.
// positserve maps it straight into its JSON error envelope;
// positcampaign prints it.
type Error struct {
	// Code is one of the Code* constants above.
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// badf builds a CodeBadRequest error.
func badf(format string, args ...interface{}) *Error {
	return &Error{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

// CampaignSpec is the canonical campaign description. It doubles as
// the body of POST /v1/campaigns — the JSON tags are the service's
// wire format and never change meaning — and as the persisted request
// in each job's job.json. Zero fields take the documented defaults
// when Validate runs, and the defaulted spec is echoed back (and
// persisted), so a campaign's identity is always explicit on disk.
//
// The campaign it describes is the cross product Fields × Formats:
// each pair becomes one durable (field, codec) campaign sharing N,
// Seed and every other knob.
type CampaignSpec struct {
	// Fields are sdrbench field keys, e.g. "CESM/CLOUD". Required.
	Fields []string `json:"fields"`
	// Formats are numfmt codec names, e.g. "posit16". Required.
	Formats []string `json:"formats"`
	// N is the synthetic element count per field; 0 means 100000.
	N int `json:"n"`
	// TrialsPerBit is the injections per bit position; 0 means the
	// paper's 313.
	TrialsPerBit int `json:"trials_per_bit"`
	// Seed drives every random choice (data generation included);
	// campaigns with equal seeds and inputs are bit-identical.
	// Defaults to 1.
	Seed uint64 `json:"seed"`
	// KeepZeros allows exactly-zero elements to be selected (their
	// relative error is recorded as catastrophic).
	KeepZeros bool `json:"keep_zeros"`
	// BitsPerShard is the journaling granularity; 0 means 8.
	BitsPerShard int `json:"bits_per_shard"`
	// MaxRetries bounds per-shard retries after the first attempt;
	// nil means 2.
	MaxRetries *int `json:"max_retries,omitempty"`
	// ShardTimeout is the per-attempt watchdog as a Go duration
	// string; "" means "10m", "0s" disables it.
	ShardTimeout string `json:"shard_timeout"`
}

// Validate checks the spec against the field and codec registries and
// applies defaults in place. It returns nil on success; the returned
// *Error carries the stable code positserve serves and positcampaign
// prints. Validate is idempotent: validating an already-validated
// spec changes nothing.
func (s *CampaignSpec) Validate() *Error {
	if len(s.Fields) == 0 {
		return badf(`"fields" must name at least one dataset field`)
	}
	if len(s.Formats) == 0 {
		return badf(`"formats" must name at least one number format`)
	}
	if s.N == 0 {
		s.N = 100_000
	}
	if s.N < 0 {
		return badf(`"n" must be positive, got %d`, s.N)
	}
	if s.TrialsPerBit == 0 {
		s.TrialsPerBit = 313
	}
	if s.TrialsPerBit < 0 {
		return badf(`"trials_per_bit" must be positive, got %d`, s.TrialsPerBit)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.BitsPerShard == 0 {
		s.BitsPerShard = 8
	}
	if s.BitsPerShard < 0 {
		return badf(`"bits_per_shard" must be positive, got %d`, s.BitsPerShard)
	}
	if s.MaxRetries == nil {
		two := 2
		s.MaxRetries = &two
	}
	if *s.MaxRetries < 0 {
		return badf(`"max_retries" must be >= 0, got %d`, *s.MaxRetries)
	}
	if s.ShardTimeout == "" {
		s.ShardTimeout = "10m"
	}
	if d, err := time.ParseDuration(s.ShardTimeout); err != nil || d < 0 {
		return badf(`"shard_timeout" %q is not a valid non-negative Go duration`, s.ShardTimeout)
	}

	seen := map[string]bool{}
	for _, f := range s.Fields {
		if _, err := sdrbench.Lookup(f); err != nil {
			return &Error{Code: CodeUnknownField, Message: err.Error()}
		}
		for _, name := range s.Formats {
			codec, err := numfmt.Lookup(name)
			if err != nil {
				return &Error{Code: CodeUnknownFormat, Message: err.Error()}
			}
			key := f + " " + codec.Name()
			if seen[key] {
				return badf("duplicate (field, format) pair %s", key)
			}
			seen[key] = true
		}
	}
	return nil
}

// ShardTimeoutDuration returns the parsed per-attempt watchdog.
// Call it on a validated spec; an unparseable value (impossible after
// Validate) falls back to the 10m default.
func (s *CampaignSpec) ShardTimeoutDuration() time.Duration {
	d, err := time.ParseDuration(s.ShardTimeout)
	if err != nil {
		return 10 * time.Minute
	}
	return d
}

// MaxRetriesValue returns the retry budget, applying the default of 2
// when the field was never set.
func (s *CampaignSpec) MaxRetriesValue() int {
	if s.MaxRetries == nil {
		return 2
	}
	return *s.MaxRetries
}

// TotalShards returns how many journal shards the campaign cuts into:
// for every (field, format) pair, its codec width split into
// BitsPerShard-sized ranges. Call it on a validated spec; unknown
// formats (impossible after Validate) contribute zero.
func (s *CampaignSpec) TotalShards() int {
	per := s.BitsPerShard
	if per <= 0 {
		per = 8
	}
	total := 0
	for _, name := range s.Formats {
		codec, err := numfmt.Lookup(name)
		if err != nil {
			continue
		}
		total += len(s.Fields) * ((codec.Width() + per - 1) / per)
	}
	return total
}
