// Package checkpoint implements in-memory checkpoint/restart with
// integrity checking — the protection scheme of the paper's refs [37]
// (Ni et al., ACR: automatic checkpoint/restart for soft and hard
// error protection) and [23] (Fiala et al.): solver state is
// snapshotted periodically as raw format words guarded by a CRC, a
// cheap progress monitor detects corruption, and the computation rolls
// back to the last good snapshot instead of silently finishing wrong.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"positres/internal/kernels"
	"positres/internal/numfmt"
)

// Checkpoint is one integrity-protected snapshot of an array.
type Checkpoint struct {
	words []uint64
	crc   uint32
}

// Take snapshots the array.
func Take(a *kernels.Array) *Checkpoint {
	c := &Checkpoint{words: a.Snapshot()}
	c.crc = checksum(c.words)
	return c
}

func checksum(words []uint64) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], w)
		//positlint:ignore errdrop hash.Hash.Write is documented to never return an error
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Verify reports whether the snapshot itself is uncorrupted (a
// checkpoint living in the same fault-prone memory needs its own
// integrity check, as ref [37] argues).
func (c *Checkpoint) Verify() bool { return checksum(c.words) == c.crc }

// Restore writes the snapshot back into the array; it refuses if the
// snapshot fails its own integrity check.
func (c *Checkpoint) Restore(a *kernels.Array) error {
	if !c.Verify() {
		return fmt.Errorf("checkpoint: snapshot corrupted (crc mismatch)")
	}
	return a.RestoreSnapshot(c.words)
}

// CorruptWord flips one bit inside the snapshot (for testing the
// checkpoint's own integrity path).
func (c *Checkpoint) CorruptWord(i, bit int) {
	c.words[i] ^= 1 << uint(bit)
}

// GuardedResult reports a guarded solve.
type GuardedResult struct {
	kernels.SolveResult
	// Rollbacks counts restarts from a checkpoint.
	Rollbacks int
	// Checkpoints counts snapshots taken.
	Checkpoints int
}

// DefaultMaxRollbacks is the rollback budget when GuardedOpts leaves
// MaxRollbacks zero.
const DefaultMaxRollbacks = 16

// ErrRollbackBudget reports a guarded solve that kept rolling back
// without making progress — persistent corruption or a divergence
// monitor that can never be satisfied. Without this budget the solver
// livelocks: restore, detect, restore, forever. Callers distinguish it
// with errors.Is.
var ErrRollbackBudget = errors.New("checkpoint: rollback budget exhausted")

// GuardedOpts parameterizes GuardedJacobi.
type GuardedOpts struct {
	// MaxIters bounds the sweep count.
	MaxIters int
	// Interval is the number of sweeps between snapshots; must be
	// positive.
	Interval int
	// GrowFactor is the divergence monitor: a residual growing by more
	// than this factor between snapshots triggers a rollback.
	GrowFactor float64
	// MaxRollbacks bounds restarts from a checkpoint; when corruption
	// is detected with the budget already spent, the solve aborts with
	// ErrRollbackBudget. Zero means DefaultMaxRollbacks.
	MaxRollbacks int
	// Inject, when non-nil, flips one stored bit mid-solve.
	Inject *kernels.Injection
}

// GuardedJacobi runs the Jacobi iteration with checkpoint/restart: a
// snapshot every Interval sweeps, and a divergence monitor (residual
// growing by more than GrowFactor between snapshots) triggers a
// rollback, bounded by MaxRollbacks. Inject, when non-nil, flips one
// stored bit mid-solve — the guarded run detects the damage and
// recovers, where the bare run (kernels.Problem.Jacobi) carries it to
// the end.
func GuardedJacobi(p *kernels.Problem, codec numfmt.Codec, opts GuardedOpts) (GuardedResult, error) {
	maxIters, interval, growFactor, inject := opts.MaxIters, opts.Interval, opts.GrowFactor, opts.Inject
	maxRollbacks := opts.MaxRollbacks
	if maxRollbacks <= 0 {
		maxRollbacks = DefaultMaxRollbacks
	}
	if interval <= 0 {
		return GuardedResult{}, fmt.Errorf("checkpoint: interval must be positive")
	}
	n := p.Op.N
	x := kernels.NewArray(codec, make([]float64, n))
	xNew := kernels.NewArray(codec, make([]float64, n))
	b := kernels.NewArray(codec, p.B)
	r := kernels.NewArray(codec, make([]float64, n))

	var res GuardedResult
	ck := Take(x)
	res.Checkpoints++
	lastResidual := p.Op.Residual(b, x, r)

	for it := 0; it < maxIters; it++ {
		if inject != nil && it == inject.Iter {
			x.InjectBitFlip(inject.Index, inject.Bit)
		}
		for i := 0; i < n; i++ {
			v := b.Load(i)
			if i > 0 {
				v += x.Load(i - 1)
			}
			if i < n-1 {
				v += x.Load(i + 1)
			}
			xNew.Store(i, v/2)
		}
		x, xNew = xNew, x
		res.Iters = it + 1

		if (it+1)%interval == 0 {
			rn := p.Op.Residual(b, x, r)
			if math.IsNaN(rn) || math.IsInf(rn, 0) || rn > lastResidual*growFactor {
				// Corruption detected: roll back to the last good state —
				// unless the budget is spent, in which case restarting
				// again would livelock on the same damage.
				if res.Rollbacks >= maxRollbacks {
					return res, fmt.Errorf("checkpoint: corruption persists after %d rollbacks: %w", res.Rollbacks, ErrRollbackBudget)
				}
				if err := ck.Restore(x); err != nil {
					return res, err
				}
				res.Rollbacks++
				continue
			}
			// Progress is healthy: refresh the checkpoint.
			ck = Take(x)
			res.Checkpoints++
			lastResidual = rn
		}
	}
	res.FinalResidual = p.Op.Residual(b, x, r)
	res.SolutionErr = solutionErr(p, x)
	res.Diverged = math.IsNaN(res.FinalResidual) || math.IsInf(res.FinalResidual, 0)
	return res, nil
}

func solutionErr(p *kernels.Problem, x *kernels.Array) float64 {
	var s float64
	for i := 0; i < x.Len(); i++ {
		d := x.Load(i) - p.XStar[i]
		s += d * d
	}
	return math.Sqrt(s)
}
