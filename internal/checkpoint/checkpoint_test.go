package checkpoint

import (
	"errors"
	"testing"

	"positres/internal/kernels"
	"positres/internal/numfmt"
)

func codec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTakeVerifyRestore(t *testing.T) {
	c := codec(t, "posit32")
	a := kernels.NewArray(c, []float64{1, 2, 3, 4})
	ck := Take(a)
	if !ck.Verify() {
		t.Fatal("fresh checkpoint should verify")
	}
	a.Store(2, 99)
	a.InjectBitFlip(0, 30)
	if err := ck.Restore(a); err != nil {
		t.Fatal(err)
	}
	if a.Load(2) != 3 || a.Load(0) != 1 {
		t.Fatalf("restore failed: %v", a.Float64s())
	}
	// A corrupted checkpoint refuses to restore.
	ck.CorruptWord(1, 5)
	if ck.Verify() {
		t.Fatal("corrupted checkpoint should fail verification")
	}
	if err := ck.Restore(a); err == nil {
		t.Fatal("restore from corrupted checkpoint should error")
	}
	// Length mismatch.
	short := kernels.NewArray(c, []float64{1})
	ck2 := Take(a)
	if err := ck2.Restore(short); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestGuardedJacobiClean(t *testing.T) {
	p := kernels.NewProblem(48)
	res, err := GuardedJacobi(p, codec(t, "posit32"), GuardedOpts{MaxIters: 600, Interval: 25, GrowFactor: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.Rollbacks != 0 {
		t.Fatalf("clean guarded run: %+v", res)
	}
	if res.Checkpoints < 2 {
		t.Fatalf("expected periodic checkpoints, got %d", res.Checkpoints)
	}
}

// TestGuardedJacobiRecovers: a catastrophic upper-bit flip triggers a
// rollback, and the guarded run ends close to the clean run — while
// the unguarded solve carries the damage.
func TestGuardedJacobiRecovers(t *testing.T) {
	p := kernels.NewProblem(48)
	for _, name := range []string{"ieee32", "posit32"} {
		c := codec(t, name)
		inj := kernels.Injection{Iter: 100, Index: 20, Bit: 30}

		clean, err := GuardedJacobi(p, c, GuardedOpts{MaxIters: 600, Interval: 25, GrowFactor: 1.01})
		if err != nil {
			t.Fatal(err)
		}
		guarded, err := GuardedJacobi(p, c, GuardedOpts{MaxIters: 600, Interval: 25, GrowFactor: 1.01, Inject: &inj})
		if err != nil {
			t.Fatal(err)
		}
		bare, err := p.Jacobi(c, 600, 0, &inj, false)
		if err != nil {
			t.Fatal(err)
		}
		if guarded.Rollbacks == 0 && name == "ieee32" {
			t.Errorf("%s: catastrophic flip did not trigger rollback", name)
		}
		if guarded.SolutionErr > clean.SolutionErr*1.5 {
			t.Errorf("%s: guarded error %g vs clean %g", name, guarded.SolutionErr, clean.SolutionErr)
		}
		if name == "ieee32" && !(bare.SolutionErr > 1e6*guarded.SolutionErr) {
			t.Errorf("%s: bare error %g should dwarf guarded %g", name, bare.SolutionErr, guarded.SolutionErr)
		}
	}
}

func TestGuardedJacobiBadInterval(t *testing.T) {
	p := kernels.NewProblem(16)
	if _, err := GuardedJacobi(p, codec(t, "posit32"), GuardedOpts{MaxIters: 10, GrowFactor: 1.01}); err == nil {
		t.Fatal("zero interval should error")
	}
}

// TestGuardedJacobiRollbackBudget: a divergence monitor that can never
// be satisfied (GrowFactor 0 flags every positive residual as
// corruption) would roll back forever; the budget turns that livelock
// into a distinct, inspectable error.
func TestGuardedJacobiRollbackBudget(t *testing.T) {
	p := kernels.NewProblem(32)
	res, err := GuardedJacobi(p, codec(t, "posit32"), GuardedOpts{
		MaxIters: 10000, Interval: 5, GrowFactor: 0, MaxRollbacks: 3,
	})
	if !errors.Is(err, ErrRollbackBudget) {
		t.Fatalf("err = %v, want ErrRollbackBudget", err)
	}
	if res.Rollbacks != 3 {
		t.Fatalf("rollbacks = %d, want exactly the budget (3)", res.Rollbacks)
	}
	// The default budget kicks in when the option is zero.
	res, err = GuardedJacobi(p, codec(t, "posit32"), GuardedOpts{
		MaxIters: 10000, Interval: 5, GrowFactor: 0,
	})
	if !errors.Is(err, ErrRollbackBudget) {
		t.Fatalf("default budget: err = %v, want ErrRollbackBudget", err)
	}
	if res.Rollbacks != DefaultMaxRollbacks {
		t.Fatalf("rollbacks = %d, want DefaultMaxRollbacks", res.Rollbacks)
	}
}
