// Package abft implements algorithm-based fault tolerance for matrix
// multiplication (Huang & Abraham, "Algorithm-Based Fault Tolerance
// for Matrix Operations" — the paper's refs [29, 30]): the operands
// are extended with column/row checksums, the product inherits a full
// checksum structure, and any single corrupted element of the result
// is located by its inconsistent row and column and corrected from the
// checksums.
//
// Matrices are stored in a number format (posit or IEEE) through
// kernels.Array, so injected bit flips corrupt exactly what a memory
// fault would — completing the paper's fault-tolerance triangle:
// per-bit error analysis (core), memory protection (ecc), and
// algorithmic protection (this package).
package abft

import (
	"fmt"
	"math"

	"positres/internal/kernels"
	"positres/internal/numfmt"
)

// Matrix is a dense row-major matrix stored in a number format.
type Matrix struct {
	Rows, Cols int // matrix dimensions, in elements
	data       *kernels.Array
}

// NewMatrix stores vals (row-major, len Rows×Cols) in the format.
func NewMatrix(codec numfmt.Codec, rows, cols int, vals []float64) (*Matrix, error) {
	if len(vals) != rows*cols {
		return nil, fmt.Errorf("abft: %d values for a %dx%d matrix", len(vals), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, data: kernels.NewArray(codec, vals)}, nil
}

// At reads element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data.Load(i*m.Cols + j) }

// Set writes element (i, j), rounding into the format.
func (m *Matrix) Set(i, j int, v float64) { m.data.Store(i*m.Cols+j, v) }

// InjectBitFlip flips one stored bit of element (i, j).
func (m *Matrix) InjectBitFlip(i, j, bit int) { m.data.InjectBitFlip(i*m.Cols+j, bit) }

// Protected is a full-checksum product matrix: the data block is
// C = A·B (Rows×Cols), bordered by a checksum column (each row's sum)
// and a checksum row (each column's sum), all stored in the format.
type Protected struct {
	*Matrix // (Rows+1) × (Cols+1), data block in the top-left

	// Tol is the relative tolerance separating format rounding noise
	// from corruption during verification.
	Tol float64
}

// MulChecked multiplies A (m×n) by B (n×p) with the Huang–Abraham
// full-checksum scheme, returning the protected product. tol is the
// verification tolerance relative to each row/column's magnitude
// (use ~1e-5 for 32-bit formats).
func MulChecked(a, b *Matrix, tol float64) (*Protected, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("abft: shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	m, n, p := a.Rows, a.Cols, b.Cols
	codec := a.data.Codec()
	full := make([]float64, (m+1)*(p+1))
	// Data block.
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			full[i*(p+1)+j] = s
		}
	}
	// Checksum column (row sums), then checksum row (column sums);
	// the corner ends up the grand total, cross-validating both.
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < p; j++ {
			s += full[i*(p+1)+j]
		}
		full[i*(p+1)+p] = s
	}
	for j := 0; j <= p; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += full[i*(p+1)+j]
		}
		full[m*(p+1)+j] = s
	}
	mat := &Matrix{Rows: m + 1, Cols: p + 1, data: kernels.NewArray(codec, full)}
	return &Protected{Matrix: mat, Tol: tol}, nil
}

// Verdict reports a verification pass.
type Verdict struct {
	OK bool // true when every checksum is consistent within Tol
	// Row/Col locate the corrupted data element when both a row and a
	// column are inconsistent (-1 when that side is consistent —
	// a checksum-element fault shows up on one side only).
	Row, Col int
	// Delta is the row-side discrepancy (sum − checksum) at the fault.
	Delta float64
}

// Verify recomputes every row and column sum of the data block and
// compares against the stored checksums.
func (p *Protected) Verify() Verdict {
	m, pc := p.Rows-1, p.Cols-1
	v := Verdict{OK: true, Row: -1, Col: -1}
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < pc; j++ {
			s += p.At(i, j)
		}
		chk := p.At(i, pc)
		if bad(s, chk, p.Tol) {
			v.OK = false
			v.Row = i
			v.Delta = s - chk
			break
		}
	}
	for j := 0; j < pc; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += p.At(i, j)
		}
		if bad(s, p.At(m, j), p.Tol) {
			v.OK = false
			v.Col = j
			break
		}
	}
	return v
}

func bad(sum, chk, tol float64) bool {
	if math.IsNaN(sum) || math.IsNaN(chk) || math.IsInf(sum, 0) || math.IsInf(chk, 0) {
		return true
	}
	scale := math.Abs(sum) + math.Abs(chk) + 1
	return math.Abs(sum-chk) > tol*scale
}

// Correct repairs a single corrupted element located by Verify:
// a data element at (Row, Col) is reconstructed from its row checksum;
// a corrupted checksum element (one-sided inconsistency) is recomputed.
// It returns whether a repair was applied.
func (p *Protected) Correct() bool {
	v := p.Verify()
	if v.OK {
		return false
	}
	m, pc := p.Rows-1, p.Cols-1
	switch {
	case v.Row >= 0 && v.Col >= 0:
		// Data element: others in its row are intact, so the row
		// checksum reconstructs it.
		var s float64
		for j := 0; j < pc; j++ {
			if j != v.Col {
				s += p.At(v.Row, j)
			}
		}
		p.Set(v.Row, v.Col, p.At(v.Row, pc)-s)
	case v.Row >= 0:
		// Row-checksum element corrupted: recompute it.
		var s float64
		for j := 0; j < pc; j++ {
			s += p.At(v.Row, j)
		}
		p.Set(v.Row, pc, s)
	case v.Col >= 0:
		// Column-checksum element corrupted: recompute it.
		var s float64
		for i := 0; i < m; i++ {
			s += p.At(i, v.Col)
		}
		p.Set(m, v.Col, s)
	default:
		return false
	}
	return true
}

// Data extracts the (unbordered) product block.
func (p *Protected) Data() []float64 {
	m, pc := p.Rows-1, p.Cols-1
	out := make([]float64, m*pc)
	for i := 0; i < m; i++ {
		for j := 0; j < pc; j++ {
			out[i*pc+j] = p.At(i, j)
		}
	}
	return out
}

// MaxDataError returns the largest absolute difference between the
// protected product block and a reference block.
func (p *Protected) MaxDataError(ref []float64) float64 {
	m, pc := p.Rows-1, p.Cols-1
	worst := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < pc; j++ {
			d := math.Abs(p.At(i, j) - ref[i*pc+j])
			if math.IsNaN(d) {
				return math.Inf(1)
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
