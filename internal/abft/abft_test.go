package abft

import (
	"math"
	"testing"

	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

func codec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// buildProduct makes deterministic operand matrices and the reference
// (float64) product block.
func buildProduct(t *testing.T, c numfmt.Codec, m, n, p int, seed uint64) (*Protected, []float64) {
	t.Helper()
	rng := sdrbench.NewRNG(seed, "abft-test")
	av := make([]float64, m*n)
	bv := make([]float64, n*p)
	for i := range av {
		av[i] = rng.NormFloat64() * 3
	}
	for i := range bv {
		bv[i] = rng.NormFloat64() * 2
	}
	A, err := NewMatrix(c, m, n, av)
	if err != nil {
		t.Fatal(err)
	}
	B, err := NewMatrix(c, n, p, bv)
	if err != nil {
		t.Fatal(err)
	}
	P, err := MulChecked(A, B, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, m*p)
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += A.At(i, k) * B.At(k, j)
			}
			ref[i*p+j] = s
		}
	}
	return P, ref
}

func TestMatrixBasics(t *testing.T) {
	c := codec(t, "ieee64")
	m, err := NewMatrix(c, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatal("At")
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set")
	}
	if _, err := NewMatrix(c, 2, 2, []float64{1}); err == nil {
		t.Error("shape mismatch should error")
	}
	a, _ := NewMatrix(c, 2, 3, make([]float64, 6))
	b, _ := NewMatrix(c, 2, 3, make([]float64, 6))
	if _, err := MulChecked(a, b, 1e-9); err == nil {
		t.Error("incompatible multiply should error")
	}
}

// TestCleanVerifies: an uncorrupted checksummed product verifies OK
// for every storage format.
func TestCleanVerifies(t *testing.T) {
	for _, name := range []string{"posit32", "ieee32", "ieee64", "posit64"} {
		P, ref := buildProduct(t, codec(t, name), 8, 6, 7, 1)
		v := P.Verify()
		if !v.OK {
			t.Errorf("%s: clean product flagged: %+v", name, v)
		}
		if P.MaxDataError(ref) > 1e-4 {
			t.Errorf("%s: product block wrong", name)
		}
		if P.Correct() {
			t.Errorf("%s: Correct on clean data should be a no-op", name)
		}
	}
}

// TestSingleDataFaultCorrected: any sufficiently large single-element
// corruption of the data block is located and corrected back to within
// format rounding.
func TestSingleDataFaultCorrected(t *testing.T) {
	for _, name := range []string{"posit32", "ieee32"} {
		c := codec(t, name)
		for _, bit := range []int{20, 24, 27, 29, 30, 31} {
			P, ref := buildProduct(t, c, 8, 6, 7, 2)
			P.InjectBitFlip(3, 4, bit)
			v := P.Verify()
			if v.OK {
				// The flip fell below the ABFT tolerance — it must then
				// be harmless at that tolerance scale.
				if P.MaxDataError(ref) > 1e-3 {
					t.Errorf("%s bit %d: undetected fault with large error", name, bit)
				}
				continue
			}
			if v.Row != 3 || v.Col != 4 {
				t.Errorf("%s bit %d: located (%d,%d), want (3,4)", name, bit, v.Row, v.Col)
				continue
			}
			if !P.Correct() {
				t.Errorf("%s bit %d: correction refused", name, bit)
				continue
			}
			if !P.Verify().OK {
				t.Errorf("%s bit %d: still inconsistent after correction", name, bit)
			}
			if P.MaxDataError(ref) > 1e-3 {
				t.Errorf("%s bit %d: residual error %g after correction", name, bit, P.MaxDataError(ref))
			}
		}
	}
}

// TestChecksumElementFault: a fault in a checksum element (not the
// data block) is one-side inconsistent and gets recomputed.
func TestChecksumElementFault(t *testing.T) {
	c := codec(t, "posit32")
	P, ref := buildProduct(t, c, 6, 5, 6, 3)
	// Corrupt a row-checksum element (last column).
	P.InjectBitFlip(2, P.Cols-1, 29)
	v := P.Verify()
	if v.OK || v.Row != 2 || v.Col != -1 {
		t.Fatalf("row-checksum fault verdict: %+v", v)
	}
	if !P.Correct() || !P.Verify().OK {
		t.Fatal("row-checksum repair failed")
	}
	// Corrupt a column-checksum element (last row).
	P.InjectBitFlip(P.Rows-1, 3, 29)
	v = P.Verify()
	if v.OK || v.Col != 3 || v.Row != -1 {
		t.Fatalf("col-checksum fault verdict: %+v", v)
	}
	if !P.Correct() || !P.Verify().OK {
		t.Fatal("col-checksum repair failed")
	}
	if P.MaxDataError(ref) > 1e-3 {
		t.Fatal("data block disturbed by checksum repairs")
	}
}

// TestNaNFaultDetected: a flip producing NaN/Inf (IEEE) is always
// detected.
func TestNaNFaultDetected(t *testing.T) {
	c := codec(t, "ieee32")
	P, _ := buildProduct(t, c, 6, 5, 6, 4)
	// Force a NaN into the data block directly.
	P.Set(1, 1, math.NaN())
	if P.Verify().OK {
		t.Fatal("NaN element not detected")
	}
}

// TestABFTSweepPositVsIEEE: inject every bit position into a data
// element; after ABFT correct-if-detected, the residual error is tiny
// for BOTH formats — algorithmic protection equalizes them — but the
// raw (unprotected) worst error differs by many orders of magnitude.
func TestABFTSweepPositVsIEEE(t *testing.T) {
	worstRaw := map[string]float64{}
	worstProtected := map[string]float64{}
	for _, name := range []string{"posit32", "ieee32"} {
		c := codec(t, name)
		for bit := 0; bit < 32; bit++ {
			P, ref := buildProduct(t, c, 6, 5, 6, 5)
			P.InjectBitFlip(2, 2, bit)
			raw := P.MaxDataError(ref)
			if raw > worstRaw[name] || math.IsInf(raw, 0) {
				worstRaw[name] = raw
			}
			P.Correct()
			prot := P.MaxDataError(ref)
			if prot > worstProtected[name] {
				worstProtected[name] = prot
			}
		}
	}
	if !(worstRaw["ieee32"] > 1e6*worstRaw["posit32"]) && !math.IsInf(worstRaw["ieee32"], 0) {
		t.Errorf("raw worst: ieee %g should dwarf posit %g", worstRaw["ieee32"], worstRaw["posit32"])
	}
	for name, w := range worstProtected {
		if w > 1e-2 {
			t.Errorf("%s: ABFT residual %g too large", name, w)
		}
	}
}
