// Package textplot renders the paper's figures as plain text: semilog
// line charts for the per-bit error curves (Figs. 3, 10, 11, 14, 16,
// 18), box plots for the sign-bit study (Fig. 20), and aligned tables
// (Table 1). It also exports series as TSV for external plotting.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"positres/internal/stats"
)

// Series is one named curve: Y[i] plotted at X[i].
type Series struct {
	Name string    // legend label
	X    []float64 // abscissae, parallel to Y
	Y    []float64 // ordinates
}

// LineChart renders one or more series on a shared axis grid.
type LineChart struct {
	Title  string // printed above the plot; empty = omitted
	XLabel string // x-axis caption
	YLabel string // y-axis caption
	// LogY plots log10(y); non-positive and non-finite points are
	// skipped (rendered as gaps), as in the paper's log-scale figures.
	LogY   bool
	Width  int      // plot columns (default 72)
	Height int      // plot rows (default 20)
	Series []Series // curves to render, legend in slice order
}

// seriesGlyphs mark points of successive series.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *LineChart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	type pt struct {
		x, y float64
		s    int
	}
	var pts []pt
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for si, s := range c.Series {
		for i := range s.X {
			y := s.Y[i]
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			x := s.X[i]
			pts = append(pts, pt{x, y, si})
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(pts) == 0 {
		b.WriteString("(no plottable points)\n")
		return b.String()
	}
	// Guard the axis divisors: a zero-width range would divide by zero
	// below (exact-zero checks are the precise predicate here).
	if xmax-xmin == 0 {
		xmax = xmin + 1
	}
	if ymax-ymin == 0 {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, p := range pts {
		col := int((p.x - xmin) / (xmax - xmin) * float64(w-1))
		row := h - 1 - int((p.y-ymin)/(ymax-ymin)*float64(h-1))
		g := seriesGlyphs[p.s%len(seriesGlyphs)]
		if grid[row][col] != ' ' && grid[row][col] != g {
			grid[row][col] = '?' // overlapping series
		} else {
			grid[row][col] = g
		}
	}
	yfmt := func(v float64) string {
		if c.LogY {
			return fmt.Sprintf("1e%+05.1f", v)
		}
		return fmt.Sprintf("%8.3g", v)
	}
	for r := 0; r < h; r++ {
		yv := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		label := "        "
		if r == 0 || r == h-1 || r == h/2 {
			label = yfmt(yv)
		}
		fmt.Fprintf(&b, "%8s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g\n", "", w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%8s  x: %s    y: %s%s\n", "", c.XLabel, c.YLabel, logNote(c.LogY))
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%8s  %c %s\n", "", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}

func logNote(logy bool) string {
	if logy {
		return " (log scale)"
	}
	return ""
}

// TSV exports the chart's series as tab-separated values with a
// header, one row per x (union over series; missing cells are blank).
func (c *LineChart) TSV() string {
	xset := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range c.Series {
		b.WriteString("\t")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range c.Series {
			b.WriteString("\t")
			for i := range s.X {
				// Identity match: x was taken from the union of the
				// series' own X values, so bit equality is exact.
				if math.Float64bits(s.X[i]) == math.Float64bits(x) {
					fmt.Fprintf(&b, "%g", s.Y[i])
					break
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BoxPlot renders labeled five-number summaries on a shared
// (optionally log) scale — the layout of the paper's Fig. 20.
type BoxPlot struct {
	Title  string // printed above the plot; empty = omitted
	XLabel string // value-axis caption
	LogX   bool   // render on a log10 value scale
	Width  int    // plot columns (default 72)
	// Groups are the boxes to draw, one row each, top to bottom.
	Groups []struct {
		Label string         // row label
		Box   stats.BoxStats // five-number summary to draw
	}
}

// AddGroup appends a labeled box.
func (p *BoxPlot) AddGroup(label string, b stats.BoxStats) {
	p.Groups = append(p.Groups, struct {
		Label string
		Box   stats.BoxStats
	}{label, b})
}

// Render draws one row per group: |----[== M ==]----| between Low and
// Hi with the interquartile box and median marker.
func (p *BoxPlot) Render() string {
	w := p.Width
	if w <= 0 {
		w = 64
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	tx := func(v float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		if p.LogX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	ok := false
	for _, g := range p.Groups {
		for _, v := range []float64{g.Box.Low, g.Box.Hi} {
			if t, valid := tx(v); valid {
				lo, hi = math.Min(lo, t), math.Max(hi, t)
				ok = true
			}
		}
	}
	if !ok {
		b.WriteString("(no plottable boxes)\n")
		return b.String()
	}
	if hi-lo == 0 { // zero-width range would divide by zero below
		hi = lo + 1
	}
	col := func(v float64) (int, bool) {
		t, valid := tx(v)
		if !valid {
			return 0, false
		}
		return int((t - lo) / (hi - lo) * float64(w-1)), true
	}
	for _, g := range p.Groups {
		line := []byte(strings.Repeat(" ", w))
		cl, okl := col(g.Box.Low)
		ch, okh := col(g.Box.Hi)
		c1, ok1 := col(g.Box.Q1)
		c3, ok3 := col(g.Box.Q3)
		cm, okm := col(g.Box.Median)
		if okl && okh {
			for i := cl; i <= ch; i++ {
				line[i] = '-'
			}
			line[cl], line[ch] = '|', '|'
		}
		if ok1 && ok3 {
			for i := c1; i <= c3; i++ {
				line[i] = '='
			}
			line[c1], line[c3] = '[', ']'
		}
		if okm {
			line[cm] = 'M'
		}
		fmt.Fprintf(&b, "%-12s %s  (n=%d, med=%.3g)\n", g.Label, string(line), g.Box.N, g.Box.Median)
	}
	scale := ""
	if p.LogX {
		scale = " (log scale)"
	}
	fmt.Fprintf(&b, "%-12s %-*.3g%*.3g\n", "", w/2, unTx(lo, p.LogX), w-w/2, unTx(hi, p.LogX))
	fmt.Fprintf(&b, "%-12s %s%s\n", "", p.XLabel, scale)
	return b.String()
}

func unTx(v float64, logx bool) float64 {
	if logx {
		return math.Pow(10, v)
	}
	return v
}

// Table renders rows with aligned columns.
type Table struct {
	Header []string   // column titles
	Rows   [][]string // cell text, each row len(Header) wide
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table with a header separator.
func (t *Table) Render() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
