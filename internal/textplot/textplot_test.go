package textplot

import (
	"math"
	"strings"
	"testing"

	"positres/internal/stats"
)

func TestLineChartBasic(t *testing.T) {
	c := &LineChart{
		Title:  "demo",
		XLabel: "bit",
		YLabel: "err",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
		},
	}
	out := c.Render()
	for _, want := range []string{"demo", "*", "+", "a\n", "b\n", "x: bit", "y: err"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestLineChartLogY(t *testing.T) {
	c := &LineChart{
		LogY:   true,
		YLabel: "rel err",
		Series: []Series{{
			Name: "s",
			X:    []float64{0, 1, 2, 3, 4},
			Y:    []float64{1e-3, 1, 1e3, -5, math.NaN()}, // negatives & NaN skipped
		}},
	}
	out := c.Render()
	if !strings.Contains(out, "log scale") {
		t.Error("log note missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no points drawn")
	}
}

func TestLineChartEmpty(t *testing.T) {
	c := &LineChart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if !strings.Contains(c.Render(), "no plottable points") {
		t.Error("empty chart should say so")
	}
}

func TestLineChartConstant(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	c := &LineChart{Series: []Series{{Name: "c", X: []float64{5}, Y: []float64{7}}}}
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Errorf("single point chart:\n%s", out)
	}
}

func TestTSV(t *testing.T) {
	c := &LineChart{
		Series: []Series{
			{Name: "p", X: []float64{0, 1}, Y: []float64{0.5, 1.5}},
			{Name: "q", X: []float64{1, 2}, Y: []float64{9, 8}},
		},
	}
	tsv := c.TSV()
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if lines[0] != "x\tp\tq" {
		t.Errorf("header: %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows: %v", lines)
	}
	if lines[1] != "0\t0.5\t" || lines[2] != "1\t1.5\t9" || lines[3] != "2\t\t8" {
		t.Errorf("body: %q", lines[1:])
	}
}

func TestBoxPlot(t *testing.T) {
	p := &BoxPlot{Title: "sign error", XLabel: "abs err", LogX: true}
	p.AddGroup("k=1", stats.Box([]float64{1, 2, 3, 4, 5}))
	p.AddGroup("k=2", stats.Box([]float64{100, 200, 300}))
	out := p.Render()
	for _, want := range []string{"sign error", "k=1", "k=2", "M", "[", "]", "log scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("box plot missing %q:\n%s", want, out)
		}
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	p := &BoxPlot{}
	p.AddGroup("none", stats.Box(nil))
	if !strings.Contains(p.Render(), "no plottable boxes") {
		t.Error("empty box plot should say so")
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("be", "22222")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: %v", lines)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	// Columns align: "alpha" is the widest first column.
	if !strings.HasPrefix(lines[2], "alpha  1") {
		t.Errorf("row: %q", lines[2])
	}
}
