// Package ieee754 provides bit-level access to IEEE-754 binary
// floating-point formats: field decomposition, a generic software
// codec for arbitrary exponent/fraction splits (binary16, bfloat16,
// binary32, binary64), special-value classification, and the
// closed-form per-bit flip error model of Elliott et al. that the
// paper uses as the IEEE baseline.
package ieee754

import (
	"fmt"
	"math"
	"math/bits"
)

// FieldKind identifies which IEEE-754 field a bit position belongs to.
type FieldKind int

const (
	// FieldSign is the single most significant bit.
	FieldSign FieldKind = iota
	// FieldExponent covers the biased-exponent bits.
	FieldExponent
	// FieldFraction covers the trailing significand bits.
	FieldFraction
)

func (k FieldKind) String() string {
	switch k {
	case FieldSign:
		return "sign"
	case FieldExponent:
		return "exponent"
	case FieldFraction:
		return "fraction"
	}
	return fmt.Sprintf("FieldKind(%d)", int(k))
}

// Format describes an IEEE-754-style binary interchange format.
// Unlike posits, the field layout is static: 1 sign bit, ExpBits
// exponent bits, FracBits fraction bits, Width = 1+ExpBits+FracBits.
type Format struct {
	Name     string // format name, e.g. "ieee32"
	ExpBits  int    // exponent field width in bits
	FracBits int    // fraction field width in bits
}

// The four formats used by the experiments. Binary32 is the paper's
// IEEE baseline; Binary16 and BFloat16 support the mixed-precision
// extension experiments.
var (
	Binary16 = Format{Name: "ieee16", ExpBits: 5, FracBits: 10}
	BFloat16 = Format{Name: "bfloat16", ExpBits: 8, FracBits: 7}
	Binary32 = Format{Name: "ieee32", ExpBits: 8, FracBits: 23}
	Binary64 = Format{Name: "ieee64", ExpBits: 11, FracBits: 52}
)

// Width returns the total format width in bits.
func (f Format) Width() int { return 1 + f.ExpBits + f.FracBits }

// Bias returns the exponent bias 2^(ExpBits-1) - 1.
func (f Format) Bias() int { return (1 << uint(f.ExpBits-1)) - 1 }

// EMax returns the largest unbiased exponent of a finite value.
func (f Format) EMax() int { return f.Bias() }

// EMin returns the unbiased exponent of the smallest normal value.
func (f Format) EMin() int { return 1 - f.Bias() }

// Mask returns the Width-bit mask.
func (f Format) Mask() uint64 {
	if f.Width() >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(f.Width())) - 1
}

// SignMask returns the sign-bit mask.
func (f Format) SignMask() uint64 { return uint64(1) << uint(f.Width()-1) }

func (f Format) expMask() uint64 { return (uint64(1)<<uint(f.ExpBits) - 1) << uint(f.FracBits) }
func (f Format) fracMask() uint64 {
	return uint64(1)<<uint(f.FracBits) - 1
}

// FieldAt reports the field owning bit position pos (0 = LSB). The
// layout is static, so no value is needed — the asymmetry with posits
// that the paper exploits.
func (f Format) FieldAt(pos int) FieldKind {
	switch {
	case pos < 0 || pos >= f.Width():
		panic(fmt.Sprintf("ieee754: FieldAt position %d out of range for %s", pos, f.Name))
	case pos == f.Width()-1:
		return FieldSign
	case pos >= f.FracBits:
		return FieldExponent
	default:
		return FieldFraction
	}
}

// Fields is a decomposed bit pattern.
type Fields struct {
	Sign uint   // 0 or 1
	Exp  uint64 // biased exponent field
	Frac uint64 // trailing significand
}

// DecodeFields splits a bit pattern into its three fields.
func (f Format) DecodeFields(b uint64) Fields {
	b &= f.Mask()
	return Fields{
		Sign: uint(b >> uint(f.Width()-1)),
		Exp:  (b & f.expMask()) >> uint(f.FracBits),
		Frac: b & f.fracMask(),
	}
}

// IsNaN reports whether the pattern encodes a NaN.
func (f Format) IsNaN(b uint64) bool {
	fd := f.DecodeFields(b)
	return fd.Exp == uint64(1)<<uint(f.ExpBits)-1 && fd.Frac != 0
}

// IsInf reports whether the pattern encodes ±Inf.
func (f Format) IsInf(b uint64) bool {
	fd := f.DecodeFields(b)
	return fd.Exp == uint64(1)<<uint(f.ExpBits)-1 && fd.Frac == 0
}

// IsSubnormal reports whether the pattern encodes a nonzero subnormal.
func (f Format) IsSubnormal(b uint64) bool {
	fd := f.DecodeFields(b)
	return fd.Exp == 0 && fd.Frac != 0
}

// IsZero reports whether the pattern encodes ±0.
func (f Format) IsZero(b uint64) bool {
	return b&f.Mask()&^f.SignMask() == 0
}

// Inf returns the bit pattern of ±Inf.
func (f Format) Inf(sign int) uint64 {
	b := f.expMask()
	if sign < 0 {
		b |= f.SignMask()
	}
	return b
}

// NaN returns the canonical quiet-NaN pattern.
func (f Format) NaN() uint64 {
	return f.expMask() | uint64(1)<<uint(f.FracBits-1)
}

// MaxFinite returns the bit pattern of the largest finite value.
func (f Format) MaxFinite() uint64 {
	return (f.expMask() - (uint64(1) << uint(f.FracBits))) | f.fracMask()
}

// Decode converts a bit pattern to float64. Exact for every format no
// wider than binary64.
func (f Format) Decode(b uint64) float64 {
	if f == Binary64 {
		return math.Float64frombits(b)
	}
	fd := f.DecodeFields(b)
	maxExp := uint64(1)<<uint(f.ExpBits) - 1
	sign := 1.0
	if fd.Sign == 1 {
		sign = -1
	}
	switch fd.Exp {
	case maxExp:
		if fd.Frac != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	case 0: // subnormal or zero
		return sign * math.Ldexp(float64(fd.Frac), f.EMin()-f.FracBits)
	}
	sig := float64(fd.Frac | uint64(1)<<uint(f.FracBits))
	return sign * math.Ldexp(sig, int(fd.Exp)-f.Bias()-f.FracBits)
}

// Encode converts a float64 to the format with IEEE round-to-nearest-
// even, handling subnormals, overflow to ±Inf and underflow to ±0.
func (f Format) Encode(x float64) uint64 {
	if f == Binary64 {
		return math.Float64bits(x)
	}
	if math.IsNaN(x) {
		return f.NaN()
	}
	var sign uint64
	if math.Signbit(x) {
		sign = f.SignMask()
	}
	if math.IsInf(x, 0) {
		return sign | f.expMask()
	}
	if x == 0 {
		return sign
	}

	fb := math.Float64bits(math.Abs(x))
	rawExp := int(fb >> 52)
	man := fb & (1<<52 - 1)
	var h int
	if rawExp == 0 { // float64 subnormal: normalize
		shift := bits.LeadingZeros64(man) - 11
		man = (man << uint(shift+1)) & (1<<52 - 1)
		h = -1022 - (shift + 1)
	} else {
		h = rawExp - 1023
	}

	// sig52 = 1.man in fixed point with 52 fraction bits.
	drop := 52 - f.FracBits // bits to discard for a normal result
	e := h + f.Bias()       // tentative biased exponent

	if e <= 0 {
		// Subnormal (or underflow): shift the full significand right
		// until the exponent is EMin, then round.
		extra := 1 - e
		drop += extra
		e = 0
		if drop >= 64 {
			// Far below the smallest subnormal: rounds to zero unless
			// exactly at the boundary, which can't happen this deep.
			return sign
		}
	}

	full := man | 1<<52 // 53-bit significand
	var kept, rem uint64
	kept = full >> uint(drop)
	rem = full & ((uint64(1) << uint(drop)) - 1)
	guard := uint64(0)
	if drop > 0 {
		guard = (full >> uint(drop-1)) & 1
		rem &^= uint64(1) << uint(drop-1)
	}
	if guard == 1 && (rem != 0 || kept&1 == 1) {
		kept++
	}

	if e == 0 {
		// kept includes no implicit bit; it may have rounded up into
		// the normal range (kept == 2^FracBits), which is exactly the
		// smallest normal: the encoding below handles it naturally.
		b := sign | kept
		return b
	}
	// Normal: kept holds 1+FracBits bits (implicit bit at FracBits),
	// possibly +1 from rounding carry.
	if kept >= uint64(1)<<uint(f.FracBits+1) {
		kept >>= 1
		e++
	}
	if e >= int(uint64(1)<<uint(f.ExpBits))-1 {
		return sign | f.expMask() // overflow to ±Inf
	}
	return sign | uint64(e)<<uint(f.FracBits) | kept&f.fracMask()
}

// Float32Bits and Float32FromBits expose the native binary32 path used
// by the fault injector (identical to the generic codec; kept for the
// hot path).
func Float32Bits(x float32) uint32     { return math.Float32bits(x) }
func Float32FromBits(b uint32) float32 { return math.Float32frombits(b) }
func Float64Bits(x float64) uint64     { return math.Float64bits(x) }
func Float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
