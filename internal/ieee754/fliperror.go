package ieee754

import "math"

// This file implements the closed-form bit-flip error model for
// IEEE-754 values (Elliott et al., "Quantifying the impact of single
// bit flips on floating point arithmetic"), which §3.1 of the paper
// summarizes:
//
//   - flipping the sign bit leaves the magnitude unchanged, so the
//     absolute error is exactly 2|v| and the relative error exactly 2;
//   - flipping exponent bit i multiplies or divides the value by
//     2^(2^i), depending on the bit's current state, so the relative
//     error is |2^(±2^i) − 1|;
//   - flipping fraction bit i perturbs the value by exactly
//     2^(e − bias + i − FracBits), so the relative error is bounded by
//     2^(i − FracBits) (and equals 2^(i−FracBits)/(1+f) exactly).
//
// The model applies to normal, nonzero values whose flip does not
// produce a special pattern (Inf/NaN) — the same regime the paper's
// Figure 3 plots.

// FlipOutcome classifies the result of a single-bit flip.
type FlipOutcome int

const (
	// OutcomeFinite means the flipped pattern is an ordinary finite value.
	OutcomeFinite FlipOutcome = iota
	// OutcomeNaN means the flip produced a NaN pattern.
	OutcomeNaN
	// OutcomeInf means the flip produced ±Inf.
	OutcomeInf
	// OutcomeZero means the flip produced ±0.
	OutcomeZero
	// OutcomeSubnormal means the flip produced a subnormal value.
	OutcomeSubnormal
)

func (o FlipOutcome) String() string {
	switch o {
	case OutcomeFinite:
		return "finite"
	case OutcomeNaN:
		return "nan"
	case OutcomeInf:
		return "inf"
	case OutcomeZero:
		return "zero"
	case OutcomeSubnormal:
		return "subnormal"
	}
	return "unknown"
}

// ClassifyFlip reports what kind of pattern flipping bit pos produces.
func (f Format) ClassifyFlip(b uint64, pos int) FlipOutcome {
	nb := (b ^ uint64(1)<<uint(pos)) & f.Mask()
	switch {
	case f.IsNaN(nb):
		return OutcomeNaN
	case f.IsInf(nb):
		return OutcomeInf
	case f.IsZero(nb):
		return OutcomeZero
	case f.IsSubnormal(nb):
		return OutcomeSubnormal
	}
	return OutcomeFinite
}

// TheoreticalRelError returns the closed-form relative error
// |orig − faulty| / |orig| for flipping bit pos of the normal, nonzero
// value encoded by b, per the Elliott model. It returns NaN when the
// model does not apply (b is zero, subnormal, or special, or the flip
// produces Inf/NaN).
func (f Format) TheoreticalRelError(b uint64, pos int) float64 {
	fd := f.DecodeFields(b)
	maxExp := uint64(1)<<uint(f.ExpBits) - 1
	if fd.Exp == 0 || fd.Exp == maxExp {
		return math.NaN() // zero, subnormal, Inf or NaN: model out of scope
	}
	switch f.FieldAt(pos) {
	case FieldSign:
		return 2
	case FieldExponent:
		i := pos - f.FracBits // exponent-internal bit index
		if f.ClassifyFlip(b, pos) != OutcomeFinite {
			// Inf/NaN (or a subnormal, whose implicit bit changes the
			// formula): out of the model's scope.
			return math.NaN()
		}
		// New value = old × 2^(±2^i): relative error |2^(±2^i) − 1|.
		if fd.Exp&(uint64(1)<<uint(i)) == 0 {
			// Bit currently 0: flipping multiplies by 2^(2^i).
			return math.Exp2(float64(int(1)<<uint(i))) - 1
		}
		// Bit currently 1: flipping divides by 2^(2^i).
		return 1 - math.Exp2(-float64(int(1)<<uint(i)))
	default: // fraction
		// Perturbation is ±2^(pos − FracBits) relative to the hidden 1;
		// relative to the full significand 1+f it is scaled by 1/(1+f).
		sig := 1 + float64(fd.Frac)/math.Exp2(float64(f.FracBits))
		return math.Exp2(float64(pos-f.FracBits)) / sig
	}
}

// TheoreticalAbsError returns |orig − faulty| under the same model,
// NaN when out of scope.
func (f Format) TheoreticalAbsError(b uint64, pos int) float64 {
	rel := f.TheoreticalRelError(b, pos)
	if math.IsNaN(rel) {
		return math.NaN()
	}
	return rel * math.Abs(f.Decode(b))
}

// MeasuredRelError computes the actual relative error of the flip by
// decoding both patterns (the empirical counterpart the campaign
// records). Returns +Inf when the faulty value is Inf/NaN and the
// original is finite nonzero.
func (f Format) MeasuredRelError(b uint64, pos int) float64 {
	orig := f.Decode(b)
	faulty := f.Decode((b ^ uint64(1)<<uint(pos)) & f.Mask())
	if orig == 0 {
		if faulty == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if math.IsNaN(faulty) || math.IsInf(faulty, 0) {
		return math.Inf(1)
	}
	return math.Abs(orig-faulty) / math.Abs(orig)
}
