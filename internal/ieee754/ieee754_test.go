package ieee754

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatGeometry(t *testing.T) {
	cases := []struct {
		f          Format
		width      int
		bias       int
		emin, emax int
	}{
		{Binary16, 16, 15, -14, 15},
		{BFloat16, 16, 127, -126, 127},
		{Binary32, 32, 127, -126, 127},
		{Binary64, 64, 1023, -1022, 1023},
	}
	for _, c := range cases {
		if c.f.Width() != c.width || c.f.Bias() != c.bias || c.f.EMin() != c.emin || c.f.EMax() != c.emax {
			t.Errorf("%s geometry: width %d bias %d emin %d emax %d",
				c.f.Name, c.f.Width(), c.f.Bias(), c.f.EMin(), c.f.EMax())
		}
	}
}

func TestFieldAtStatic(t *testing.T) {
	f := Binary32
	if f.FieldAt(31) != FieldSign {
		t.Error("bit 31 should be sign")
	}
	for p := 23; p <= 30; p++ {
		if f.FieldAt(p) != FieldExponent {
			t.Errorf("bit %d should be exponent", p)
		}
	}
	for p := 0; p <= 22; p++ {
		if f.FieldAt(p) != FieldFraction {
			t.Errorf("bit %d should be fraction", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("FieldAt out of range should panic")
		}
	}()
	f.FieldAt(32)
}

// TestBinary32MatchesNative: the generic codec must agree bit-for-bit
// with Go's native float32 conversion (which implements IEEE
// round-to-nearest-even).
func TestBinary32MatchesNative(t *testing.T) {
	check := func(x float64) bool {
		want := uint64(math.Float32bits(float32(x)))
		got := Binary32.Encode(x)
		if math.IsNaN(x) {
			return Binary32.IsNaN(got)
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100000}); err != nil {
		t.Error(err)
	}
	// Directed edge cases: overflow, underflow, subnormal boundaries.
	edges := []float64{
		0, math.Copysign(0, -1), 1, -1, 186.25,
		math.MaxFloat32, math.MaxFloat32 * 2, 1e300, -1e300,
		math.SmallestNonzeroFloat32, math.SmallestNonzeroFloat32 / 2,
		math.SmallestNonzeroFloat32 / 4096, 1e-300,
		math.Ldexp(1, -126), math.Ldexp(1, -127), math.Ldexp(1, -149), math.Ldexp(1, -150),
		math.Ldexp(1.9999999, -127), math.Ldexp(1, 127), math.Inf(1), math.Inf(-1),
	}
	for _, x := range edges {
		want := uint64(math.Float32bits(float32(x)))
		if got := Binary32.Encode(x); got != want {
			t.Errorf("Encode(%g) = %#08x, native %#08x", x, got, want)
		}
	}
}

// TestBinary32DecodeMatchesNative: decoding any pattern equals the
// native float32-to-float64 widening.
func TestBinary32DecodeMatchesNative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		b := uint64(rng.Uint32())
		got := Binary32.Decode(b)
		want := float64(math.Float32frombits(uint32(b)))
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("Decode(%#08x) = %v, native %v", b, got, want)
		}
	}
}

// TestBinary64Identity: the binary64 codec is the identity on bits.
func TestBinary64Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		b := rng.Uint64()
		x := Binary64.Decode(b)
		if !math.IsNaN(x) && Binary64.Encode(x) != b {
			t.Fatalf("binary64 round trip broke at %#x", b)
		}
	}
}

// TestExhaustiveBinary16RoundTrip: every binary16 pattern decodes and
// re-encodes to itself (except NaN payloads, which canonicalize).
func TestExhaustiveBinary16RoundTrip(t *testing.T) {
	for _, f := range []Format{Binary16, BFloat16} {
		for b := uint64(0); b <= f.Mask(); b++ {
			x := f.Decode(b)
			if math.IsNaN(x) {
				if !f.IsNaN(b) {
					t.Fatalf("%s: decode(%#x) NaN but pattern not NaN", f.Name, b)
				}
				continue
			}
			rt := f.Encode(x)
			if rt != b {
				t.Fatalf("%s: round trip of %#x (=%v) gave %#x", f.Name, b, x, rt)
			}
		}
	}
}

// TestBinary16Monotonic: decoded values are monotone in the
// sign-magnitude pattern order for finite patterns.
func TestBinary16Monotonic(t *testing.T) {
	f := Binary16
	prev := math.Inf(-1)
	// Positive ray: 0x0000..0x7C00 ascends.
	for b := uint64(0); b <= f.Inf(1); b++ {
		v := f.Decode(b)
		if !(v > prev) && b != 0 {
			t.Fatalf("not monotone at %#x: %v vs %v", b, v, prev)
		}
		prev = v
	}
}

func TestSpecialClassifiers(t *testing.T) {
	f := Binary32
	if !f.IsInf(f.Inf(1)) || !f.IsInf(f.Inf(-1)) || f.IsNaN(f.Inf(1)) {
		t.Error("Inf classification")
	}
	if !f.IsNaN(f.NaN()) || f.IsInf(f.NaN()) {
		t.Error("NaN classification")
	}
	if !f.IsZero(0) || !f.IsZero(f.SignMask()) || f.IsZero(1) {
		t.Error("zero classification")
	}
	if !f.IsSubnormal(1) || f.IsSubnormal(0) || f.IsSubnormal(f.Encode(1)) {
		t.Error("subnormal classification")
	}
	if f.Decode(f.MaxFinite()) != float64(math.MaxFloat32) {
		t.Errorf("MaxFinite = %g, want MaxFloat32", f.Decode(f.MaxFinite()))
	}
	if got := f.Decode(f.Inf(-1)); !math.IsInf(got, -1) {
		t.Errorf("Decode(-Inf pattern) = %v", got)
	}
}

// TestTheoreticalMatchesMeasured: the closed-form model must agree
// with brute-force flip-and-decode wherever it claims to apply.
func TestTheoreticalMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range []Format{Binary16, BFloat16, Binary32} {
		for i := 0; i < 20000; i++ {
			b := rng.Uint64() & f.Mask()
			pos := rng.Intn(f.Width())
			pred := f.TheoreticalRelError(b, pos)
			if math.IsNaN(pred) {
				continue // model declared itself out of scope
			}
			meas := f.MeasuredRelError(b, pos)
			if math.IsInf(meas, 1) {
				t.Fatalf("%s: model applied at %#x pos %d but flip was catastrophic", f.Name, b, pos)
			}
			if diff := math.Abs(pred-meas) / math.Max(meas, 1e-300); diff > 1e-9 && math.Abs(pred-meas) > 1e-12 {
				t.Fatalf("%s: pattern %#x pos %d: predicted %g measured %g", f.Name, b, pos, pred, meas)
			}
		}
	}
}

// TestSignFlipRelErrorExactlyTwo reproduces the paper's §3.1 claim:
// err_abs = |orig − (−orig)| = 2|orig| for IEEE floats.
func TestSignFlipRelErrorExactlyTwo(t *testing.T) {
	f := Binary32
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		b := rng.Uint64() & f.Mask()
		fd := f.DecodeFields(b)
		if fd.Exp == 0 || fd.Exp == 255 {
			continue
		}
		if got := f.MeasuredRelError(b, 31); got != 2 {
			t.Fatalf("sign flip rel error of %#x = %v, want exactly 2", b, got)
		}
	}
}

// TestExponentFlipPowersOfTwo: flipping exponent bit i scales by
// exactly 2^(2^i) — the source of the IEEE error spike (paper Fig. 3).
func TestExponentFlipPowersOfTwo(t *testing.T) {
	f := Binary32
	b := f.Encode(186.25)
	for i := 0; i < f.ExpBits; i++ {
		pos := f.FracBits + i
		nb := b ^ uint64(1)<<uint(pos)
		orig, faulty := f.Decode(b), f.Decode(nb)
		if math.IsInf(faulty, 0) || math.IsNaN(faulty) {
			continue
		}
		ratio := faulty / orig
		want := math.Exp2(float64(int(1) << uint(i)))
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if math.Abs(ratio-want)/want > 1e-12 {
			t.Errorf("exp bit %d: scale %g, want %g", i, ratio, want)
		}
	}
	// 186.25 has exponent field 0x86, whose top bit is 1: flipping bit
	// 30 divides by 2^128, the catastrophic shift of paper Fig. 3.
	top := f.FracBits + 7
	faulty := f.Decode(b ^ uint64(1)<<uint(top))
	if faulty != 186.25*math.Exp2(-128) {
		t.Errorf("top exponent flip of 186.25 = %g, want 186.25×2^-128", faulty)
	}
}

func TestClassifyFlip(t *testing.T) {
	f := Binary32
	one := f.Encode(1) // 0x3F800000
	cases := []struct {
		pos  int
		want FlipOutcome
	}{
		{31, OutcomeFinite}, // sign: -1
		{22, OutcomeFinite}, // fraction
	}
	for _, c := range cases {
		if got := f.ClassifyFlip(one, c.pos); got != c.want {
			t.Errorf("ClassifyFlip(1.0, %d) = %v, want %v", c.pos, got, c.want)
		}
	}
	// Flipping the top exponent bit of +Inf-adjacent patterns:
	inf := f.Inf(1)
	if got := f.ClassifyFlip(inf, 23); got != OutcomeFinite {
		t.Errorf("flip low exp bit of Inf: %v", got)
	}
	// exp=0xFE has a 0 in its lowest bit: flipping bit 23 gives 0xFF,
	// which is NaN or Inf depending on the fraction.
	b := f.Encode(math.MaxFloat32) // exp 0xFE, frac all ones
	if got := f.ClassifyFlip(b, 23); got != OutcomeNaN {
		t.Errorf("MaxFloat32 exp-LSB flip should be NaN, got %v", got)
	}
	b = f.Encode(math.Ldexp(1, 127)) // exp 0xFE, frac 0
	if got := f.ClassifyFlip(b, 23); got != OutcomeInf {
		t.Errorf("2^127 exp-LSB flip should be Inf, got %v", got)
	}
	// A small normal with nonzero fraction: flipping exp bit 23 takes
	// exp 1 → 0, producing a subnormal.
	b = f.Encode(math.Ldexp(1.5, -126))
	if got := f.ClassifyFlip(b, 23); got != OutcomeSubnormal {
		t.Errorf("small-normal exp flip should be subnormal, got %v", got)
	}
	// The smallest normal (fraction 0) drops to exactly zero instead.
	b = f.Encode(math.Ldexp(1, -126))
	if got := f.ClassifyFlip(b, 23); got != OutcomeZero {
		t.Errorf("smallest-normal exp flip should be zero, got %v", got)
	}
	// minpos subnormal, flip its only set bit → zero.
	if got := f.ClassifyFlip(1, 0); got != OutcomeZero {
		t.Errorf("subnormal LSB flip should be zero, got %v", got)
	}
	if OutcomeFinite.String() != "finite" || OutcomeNaN.String() != "nan" ||
		OutcomeInf.String() != "inf" || OutcomeZero.String() != "zero" ||
		OutcomeSubnormal.String() != "subnormal" || FlipOutcome(99).String() != "unknown" {
		t.Error("FlipOutcome strings")
	}
}

func TestFieldKindString(t *testing.T) {
	if FieldSign.String() != "sign" || FieldExponent.String() != "exponent" || FieldFraction.String() != "fraction" {
		t.Error("FieldKind strings")
	}
}

// TestEncodeHalfwaySubnormal: directed rounding checks at the
// subnormal/zero boundary for binary16.
func TestEncodeHalfwaySubnormal(t *testing.T) {
	f := Binary16
	ulp := math.Ldexp(1, -24) // smallest binary16 subnormal
	cases := []struct {
		x    float64
		want uint64
	}{
		{ulp, 1},
		{ulp / 2, 0},     // tie with zero: even → 0
		{ulp * 3 / 4, 1}, // above tie → rounds to ulp
		{ulp / 4, 0},     // below tie → 0
		{ulp * 3 / 2, 2}, // tie between 1 and 2 → even (2)
		{ulp * 1.25, 1},  // closer to 1
		{-ulp, f.SignMask() | 1},
	}
	for _, c := range cases {
		if got := f.Encode(c.x); got != c.want {
			t.Errorf("Encode(%g) = %#x, want %#x", c.x, got, c.want)
		}
	}
}

func TestTheoreticalAbsError(t *testing.T) {
	f := Binary32
	b := f.Encode(186.25)
	// Sign flip: abs err exactly 2·|v|.
	if got := f.TheoreticalAbsError(b, 31); got != 372.5 {
		t.Errorf("sign abs err %v", got)
	}
	// Out of scope propagates NaN.
	if !math.IsNaN(f.TheoreticalAbsError(f.NaN(), 5)) {
		t.Error("NaN input should be out of scope")
	}
	// Fraction bit: matches measured.
	pred := f.TheoreticalAbsError(b, 10)
	meas := math.Abs(f.Decode(b) - f.Decode(b^(1<<10)))
	if math.Abs(pred-meas) > 1e-9*meas {
		t.Errorf("fraction abs err %v vs %v", pred, meas)
	}
}

func TestMeasuredRelErrorEdges(t *testing.T) {
	f := Binary32
	// Zero original, zero faulty (flip the sign of +0): zero error.
	if got := f.MeasuredRelError(0, 31); got != 0 {
		t.Errorf("0 -> -0: %v", got)
	}
	// Zero original, nonzero faulty: infinite.
	if !math.IsInf(f.MeasuredRelError(0, 3), 1) {
		t.Error("0 -> subnormal should be Inf")
	}
	// Faulty NaN: infinite.
	if !math.IsInf(f.MeasuredRelError(f.Encode(math.MaxFloat32), 23), 1) {
		t.Error("NaN outcome should be Inf")
	}
}

func TestRawBitHelpers(t *testing.T) {
	if Float32FromBits(Float32Bits(1.5)) != 1.5 {
		t.Error("float32 helpers")
	}
	if Float64FromBits(Float64Bits(-2.25)) != -2.25 {
		t.Error("float64 helpers")
	}
	if Float32Bits(1) != 0x3F800000 || Float64Bits(1) != 0x3FF0000000000000 {
		t.Error("bit patterns")
	}
}

func TestMaskWide(t *testing.T) {
	if Binary64.Mask() != ^uint64(0) {
		t.Error("binary64 mask")
	}
	if Binary16.Mask() != 0xFFFF {
		t.Error("binary16 mask")
	}
	if FieldKind(9).String() == "" {
		t.Error("unknown field kind string")
	}
}
