package positres

// bench_test.go is the paper's benchmark harness: one benchmark per
// table/figure of the evaluation section (regenerating the figure's
// data from scratch each iteration) plus extension and ablation
// benches, and micro-benchmarks of the substrate operations. Render
// the actual figures with `go run ./cmd/positreport`; run the full
// 313-trials-per-bit scale with `-budget paper` there.

import (
	"context"
	"math"
	"testing"

	"positres/internal/core"
	"positres/internal/ecc"
	"positres/internal/figures"
	"positres/internal/kernels"
	"positres/internal/numfmt"
	"positres/internal/posit"
	"positres/internal/sdrbench"
	"positres/internal/stats"
)

// benchBudget keeps each figure regeneration fast enough to iterate.
var benchBudget = figures.Budget{DatasetN: 50_000, TrialsPerBit: 40, Seed: 1}

// BenchmarkTable1DatasetSummary regenerates Table 1: synthesize every
// field and compute its summary statistics.
func BenchmarkTable1DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Table1(benchBudget)
		if len(t.Rows) != 16 {
			b.Fatal("table rows")
		}
	}
}

// BenchmarkFig3IEEESingleValueSweep regenerates Fig. 3: the per-bit
// relative error of 186.25 in binary32.
func BenchmarkFig3IEEESingleValueSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.Fig3()
		if len(c.Series[0].X) != 32 {
			b.Fatal("sweep size")
		}
	}
}

// BenchmarkFig7AccuracyProfile regenerates Fig. 7: decimal accuracy vs
// magnitude for posit32 and binary32.
func BenchmarkFig7AccuracyProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.Fig7()
		if len(c.Series) != 2 {
			b.Fatal("profile series")
		}
	}
}

// BenchmarkFig10MeanRelErrorByBit regenerates Fig. 10: posit vs IEEE
// mean relative error per bit over Nyx and CESM fields. The reported
// metric "advantage" is the IEEE/posit upper-bit error ratio.
func BenchmarkFig10MeanRelErrorByBit(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		f := figures.ComputeFindings(benchBudget, "CESM/RELHUM")
		advantage = f.AdvantageRatio
		if advantage < 1e6 {
			b.Fatalf("posit advantage collapsed: %g", advantage)
		}
	}
	b.ReportMetric(math.Log10(advantage), "log10(advantage)")
}

// BenchmarkFig11RegimeBucketsGT1 regenerates Fig. 11: regime-bucketed
// error curves for posits with |v| > 1.
func BenchmarkFig11RegimeBucketsGT1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.Fig11(benchBudget)
		if len(c.Series) == 0 {
			b.Fatal("no regime buckets")
		}
	}
}

// BenchmarkFig14RegimeBucketsLT1 regenerates Fig. 14: the |v| < 1
// population, whose R_k flips plateau at relative error ≈ 1.
func BenchmarkFig14RegimeBucketsLT1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.Fig14(benchBudget)
		if len(c.Series) == 0 {
			b.Fatal("no regime buckets")
		}
	}
}

// BenchmarkFig16FractionError regenerates Fig. 16: fraction-bit error
// of k=1 posits on HACC and Hurricane data.
func BenchmarkFig16FractionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.Fig16(benchBudget)
		if len(c.Series) != 2 {
			b.Fatal("series")
		}
	}
}

// BenchmarkFig18ExponentVsFraction regenerates Fig. 18: the exponent
// bits continue the fraction's smooth trend (no spike).
func BenchmarkFig18ExponentVsFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.Fig18(benchBudget)
		if len(c.Series) != 2 {
			b.Fatal("series")
		}
	}
}

// BenchmarkFig20SignBitByRegime regenerates Fig. 20: sign-bit absolute
// error box plots by regime size.
func BenchmarkFig20SignBitByRegime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := figures.Fig20(benchBudget)
		if len(p.Groups) < 2 {
			b.Fatal("groups")
		}
	}
}

// BenchmarkExtPositWidthSweep runs the future-work 8/16/32/64-bit
// campaigns.
func BenchmarkExtPositWidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.WidthSweep(benchBudget, "Hurricane/Vf30")
		if len(c.Series) != 4 {
			b.Fatal("series")
		}
	}
}

// BenchmarkExtMultiBitFlips runs the future-work multi-bit analysis.
func BenchmarkExtMultiBitFlips(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.MultiBitTable(benchBudget, "HACC/vy")
		if len(t.Rows) != 6 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkAblationES compares legacy posit exponent sizes.
func BenchmarkAblationES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.ESAblation(benchBudget, "CESM/RELHUM")
		if len(c.Series) != 4 {
			b.Fatal("series")
		}
	}
}

// BenchmarkSolverImpact runs the end-to-end mid-solve fault study
// (Jacobi + CG, posit32 vs ieee32, six bit positions each).
func BenchmarkSolverImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.SolverImpactTable(benchBudget)
		if len(t.Rows) != 24 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkProtectionSweep repeats the worst injections under SEC-DED
// protection: faults are corrected, faulty runs match clean runs.
func BenchmarkProtectionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.ProtectionTable(benchBudget)
		if len(t.Rows) != 16 {
			b.Fatal("rows")
		}
	}
}

// ---- substrate micro-benchmarks ----

var sinkU64 uint64
var sinkF64 float64

func BenchmarkP32Encode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU64 = posit.EncodeFloat64(posit.Std32, 186.25+float64(i&1023))
	}
}

func BenchmarkP32Decode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF64 = posit.DecodeFloat64(posit.Std32, uint64(0x40000000+i&0xFFFFF))
	}
}

// BenchmarkP8DecodeLUT / BenchmarkP8DecodeGeneric measure the 256-entry
// decode table against the generic field-walking decoder it replaced
// (cmd/positbench tracks the same pair in the committed baseline).
func BenchmarkP8DecodeLUT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF64 = posit.DecodeFloat64(posit.Std8, uint64(i&0xFF))
	}
}

func BenchmarkP8DecodeGeneric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF64 = posit.DecodeFloat64Generic(posit.Std8, uint64(i&0xFF))
	}
}

func BenchmarkP16DecodeLUT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF64 = posit.DecodeFloat64(posit.Std16, uint64(i&0xFFFF))
	}
}

func BenchmarkP16DecodeGeneric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF64 = posit.DecodeFloat64Generic(posit.Std16, uint64(i&0xFFFF))
	}
}

func BenchmarkP32Add(b *testing.B) {
	x := uint64(P32FromFloat64(186.25).Bits())
	y := uint64(P32FromFloat64(0.0625).Bits())
	for i := 0; i < b.N; i++ {
		sinkU64 = posit.Add(posit.Std32, x, y)
	}
}

func BenchmarkP32Mul(b *testing.B) {
	x := uint64(P32FromFloat64(186.25).Bits())
	y := uint64(P32FromFloat64(3.5).Bits())
	for i := 0; i < b.N; i++ {
		sinkU64 = posit.Mul(posit.Std32, x, y)
	}
}

func BenchmarkP32Div(b *testing.B) {
	x := uint64(P32FromFloat64(186.25).Bits())
	y := uint64(P32FromFloat64(3.5).Bits())
	for i := 0; i < b.N; i++ {
		sinkU64 = posit.Div(posit.Std32, x, y)
	}
}

func BenchmarkP32Sqrt(b *testing.B) {
	x := uint64(P32FromFloat64(186.25).Bits())
	for i := 0; i < b.N; i++ {
		sinkU64 = posit.Sqrt(posit.Std32, x)
	}
}

func BenchmarkQuireDot64(b *testing.B) {
	a := make([]Posit32, 64)
	v := make([]Posit32, 64)
	for i := range a {
		a[i] = P32FromFloat64(float64(i) + 0.5)
		v[i] = P32FromFloat64(1.0 / (float64(i) + 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU64 = uint64(posit.DotP32(a, v).Bits())
	}
}

// BenchmarkCampaignTrialThroughput measures raw injection throughput
// (trials/second) for posit32.
func BenchmarkCampaignTrialThroughput(b *testing.B) {
	field, err := sdrbench.Lookup("Hurricane/Vf30")
	if err != nil {
		b.Fatal(err)
	}
	data := sdrbench.ToFloat64(field.Generate(100_000, 1))
	codec, err := numfmt.Lookup("posit32")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TrialsPerBit = 50
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		r, err := core.Run(context.Background(), cfg, codec, field.Key(), data)
		if err != nil {
			b.Fatal(err)
		}
		total += len(r.Trials)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkStatsSummarize measures the parallel summary reduction used
// for every baseline (Table 1 machinery).
func BenchmarkStatsSummarize(b *testing.B) {
	field, err := sdrbench.Lookup("Nyx/dark-matter-density")
	if err != nil {
		b.Fatal(err)
	}
	data := sdrbench.ToFloat64(field.Generate(1_000_000, 1))
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := stats.Summarize(data)
		sinkF64 = s.Mean
	}
}

// BenchmarkExtSoftErrorRate runs the Poisson soft-error Monte Carlo
// (expected corruption per residency epoch, posit vs IEEE).
func BenchmarkExtSoftErrorRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.SoftErrorTable(benchBudget)
		if len(t.Rows) != 4 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkExtMLWeightFlips runs the Alouani-style neural-network
// weight-flip campaign (the paper's ref [8] experiment).
func BenchmarkExtMLWeightFlips(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.MLFlipChart(benchBudget)
		if len(c.Series) != 2 {
			b.Fatal("series")
		}
	}
}

// BenchmarkJacobiSolve measures the format-stored Jacobi iteration
// (posit32 storage, 64-point Poisson, 100 sweeps).
func BenchmarkJacobiSolve(b *testing.B) {
	p := kernels.NewProblem(64)
	codec, err := numfmt.Lookup("posit32")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := p.Jacobi(codec, 100, 0, nil, false)
		if err != nil || r.Diverged {
			b.Fatal("solve failed")
		}
	}
}

// BenchmarkCGSolve measures the format-stored CG solve.
func BenchmarkCGSolve(b *testing.B) {
	p := kernels.NewProblem(64)
	codec, err := numfmt.Lookup("posit32")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := p.CG(codec, 200, 1e-6, nil, false)
		if err != nil || r.Diverged {
			b.Fatal("solve failed")
		}
	}
}

// BenchmarkECCEncodeDecode measures the SEC-DED codec.
func BenchmarkECCEncodeDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cw := ecc.Encode(uint32(i))
		v, st := ecc.Decode(cw)
		if st != ecc.OK || v != uint32(i) {
			b.Fatal("ecc")
		}
	}
}

// BenchmarkExtDetectionSweep runs the impact-driven SDC detectability
// study (paper ref [19]).
func BenchmarkExtDetectionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.DetectionTable(benchBudget)
		if len(t.Rows) != 2 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkExtABFT runs the Huang–Abraham checksummed-GEMM sweep
// (paper refs [29, 30]).
func BenchmarkExtABFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.ABFTTable(benchBudget)
		if len(t.Rows) != 2 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkExtCheckpointRestart runs the checkpoint/restart recovery
// comparison (paper refs [37], [23]).
func BenchmarkExtCheckpointRestart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.CheckpointTable(benchBudget)
		if len(t.Rows) != 6 {
			b.Fatal("rows")
		}
	}
}
