// regime_expansion walks the paper's regime worked examples:
// Fig. 12 (flipping R_k expands the regime, scaling by 2^(4n)),
// Fig. 13 (flips in R_0..R_{k-1} give comparable absolute error), and
// Fig. 15 (the k=1 below-one edge case that expands AND inverts the
// regime, producing absolute-error spikes up to 1e11).
package main

import (
	"fmt"

	"positres"
)

func show(label string, bits uint64, pos int) positres.PositFlip {
	pf := positres.AnalyzePositFlip(positres.Std32, bits, pos)
	fmt.Printf("%s\n", label)
	fmt.Printf("  before: %s = %g (k=%d)\n",
		positres.PositBitString(positres.Std32, pf.OldBits), pf.OldVal, pf.OldK)
	fmt.Printf("  flip bit %d [%s]\n", pos, pf.Class)
	fmt.Printf("  after:  %s = %g (k=%d)\n",
		positres.PositBitString(positres.Std32, pf.NewBits), pf.NewVal, pf.NewK)
	fmt.Printf("  abs err %.4g, rel err %.4g\n\n", pf.AbsErr, pf.RelErr)
	return pf
}

func main() {
	cfg := positres.Std32

	// Fig. 12: a large posit whose exponent and fraction MSBs continue
	// the run once R_k flips — the regime expands by several bits and
	// the magnitude explodes by ~2^(4n).
	big := positres.P32FromFloat64(186250)
	f := positres.DecodePositFields(cfg, uint64(big.Bits()))
	rkPos := cfg.N - 2 - f.K
	pf := show("Fig 12: regime expansion (R_k flip of 186250)", uint64(big.Bits()), rkPos)
	fmt.Printf("  regime value moved by Δr = %d → scale ≈ 2^%d\n\n", pf.RegimeDelta, 4*pf.RegimeDelta)

	// Fig. 13: R_0 vs R_{k-1} — both collapse the magnitude, so the
	// absolute errors are comparable (≈ |orig|).
	e0 := show("Fig 13a: flip R_0 of 186250", uint64(big.Bits()), cfg.N-2)
	eK := show("Fig 13b: flip R_{k-1} of 186250", uint64(big.Bits()), cfg.N-2-(f.K-1))
	fmt.Printf("Fig 13: abs err ratio R_0 / R_{k-1} = %.3f (comparable)\n\n", e0.AbsErr/eK.AbsErr)

	// Fig. 15: a below-one posit with a single regime bit and a dense
	// fraction. Flipping the sole run bit inverts the regime direction
	// AND extends the run deep into the fraction.
	var edge uint64
	edge |= 0b01 << 29            // regime k=1 (below one)
	edge |= 0b11 << 27            // exponent 3
	edge |= (uint64(1) << 27) - 1 // fraction all ones
	pf = show("Fig 15: sole-regime-bit invert-and-expand edge case", edge, 30)
	fmt.Printf("Fig 15: the paper reports spikes up to 1e11; measured abs err = %.3g\n", pf.AbsErr)
}
