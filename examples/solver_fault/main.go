// solver_fault runs the application-level study the paper motivates:
// a single bit flip strikes the solution vector of an iterative solver
// mid-run. How much damage it does depends on the storage format —
// posit32 arrays absorb upper-bit flips that send IEEE-754 arrays off
// by thirty orders of magnitude — and SEC-DED memory protection
// removes the damage entirely.
package main

import (
	"fmt"

	"positres"
)

func main() {
	fmt.Println("1-D Poisson solve, one bit flip injected mid-run")
	fmt.Println("(final solution error vs the fault-free run)")
	fmt.Println()
	fmt.Println(positres.SolverImpactTable(positres.QuickBudget).Render())
	fmt.Println("With SEC-DED (Hamming 39,32) protected storage, the same")
	fmt.Println("faults are corrected at the next load:")
	fmt.Println()
	fmt.Println(positres.ProtectionTable(positres.QuickBudget).Render())
	fmt.Println("Expected corruption per residency epoch under a Poisson")
	fmt.Println("soft-error process (accelerated DRAM-class FIT rate):")
	fmt.Println()
	fmt.Println(positres.SoftErrorTable(positres.QuickBudget).Render())
}
