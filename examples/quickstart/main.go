// Quickstart: encode a value as a posit and an IEEE float, flip one
// bit in each, and compare the damage — the paper's core experiment in
// twenty lines.
package main

import (
	"fmt"

	"positres"
)

func main() {
	const value = 186.25
	const bit = 29 // an upper bit: IEEE exponent territory

	// Posit side: encode, flip, decode.
	p := positres.P32FromFloat64(value)
	fmt.Printf("posit32 %g = %s\n", value, positres.PositBitString(positres.Std32, uint64(p.Bits())))
	pFlip := positres.AnalyzePositFlip(positres.Std32, uint64(p.Bits()), bit)
	fmt.Printf("  flip bit %d (%s): %g -> %g   rel err %.3g\n",
		bit, pFlip.Class, pFlip.OldVal, pFlip.NewVal, pFlip.RelErr)

	// IEEE side: same bit position.
	iFlip := positres.AnalyzeIEEEFlip(positres.Binary32, positres.Binary32.Encode(value), bit)
	fmt.Printf("ieee32  %g: flip bit %d (%s): %g -> %g   rel err %.3g\n",
		value, bit, iFlip.Field, iFlip.OldVal, iFlip.NewVal, iFlip.RelErr)

	// The posit stays within a few orders of magnitude; the IEEE float
	// is scaled by 2^64. Now run a miniature campaign over a synthetic
	// scientific dataset to see the aggregate picture.
	field, err := positres.LookupField("Nyx/temperature")
	if err != nil {
		panic(err)
	}
	data := positres.WidenFloat32(field.Generate(50_000, 1))

	cfg := positres.DefaultCampaignConfig()
	cfg.TrialsPerBit = 40
	for _, name := range []string{"posit32", "ieee32"} {
		codec, err := positres.LookupFormat(name)
		if err != nil {
			panic(err)
		}
		res, err := positres.RunCampaign(cfg, codec, field.Key(), data)
		if err != nil {
			panic(err)
		}
		aggs := positres.AggregateByBit(res.Trials)
		fmt.Printf("\n%s mean relative error by bit (every 4th bit):\n", name)
		for _, a := range aggs {
			if a.Bit%4 == 3 {
				fmt.Printf("  bit %2d: %.3g\n", a.Bit, a.MeanRelErr)
			}
		}
	}
}
