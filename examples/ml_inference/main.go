// ml_inference reproduces the experiment of the paper's ref [8]
// (Alouani et al., VLSID 2021): train a small classifier, store its
// weights as posits or IEEE floats, flip weight bits, and measure the
// damage — the mean relative error distance (MRED) of the outputs and
// the accuracy drop. Posit-stored models degrade far more gracefully,
// which is the application-level face of the paper's per-bit analysis.
package main

import (
	"fmt"

	"positres"
)

func main() {
	fmt.Println("Neural-network weight bit-flip campaign (paper ref [8], Alouani et al.)")
	fmt.Println()
	fmt.Println(positres.MLFlipChart(positres.QuickBudget).Render())
	fmt.Println(positres.MLImpactTable(positres.QuickBudget).Render())
	fmt.Println("Note the IEEE curve's exponent-bit cliff (bits 23-30): a single")
	fmt.Println("flipped weight bit there multiplies a weight by up to 2^128 and")
	fmt.Println("drags every prediction with it. The posit curve stays bounded —")
	fmt.Println("the regime absorbs the damage, exactly as in the per-bit study.")
}
