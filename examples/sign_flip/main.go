// sign_flip demonstrates the paper's §5.7: flipping a posit's sign bit
// is NOT negation (negation is two's complement), so the magnitude
// changes too — drastically for large regimes (Figs. 19–21) — while an
// IEEE sign flip always yields exactly the negated value (rel err 2).
package main

import (
	"fmt"
	"math"

	"positres"
)

func main() {
	cfg := positres.Std32

	// Fig. 19: negation is two's complement, not a sign-bit flip.
	p := positres.P32FromFloat64(186.25)
	flipped := positres.AnalyzePositFlip(cfg, uint64(p.Bits()), cfg.N-1)
	fmt.Printf("value:            %g = %s\n", p.Float64(), positres.PositBitString(cfg, uint64(p.Bits())))
	fmt.Printf("two's complement: %g = %s  (true negation)\n",
		p.Neg().Float64(), positres.PositBitString(cfg, uint64(p.Neg().Bits())))
	fmt.Printf("sign-bit flip:    %g = %s  (magnitude changed!)\n\n",
		flipped.NewVal, positres.PositBitString(cfg, flipped.NewBits))

	// IEEE contrast: the sign flip is exact negation.
	ib := positres.Binary32.Encode(186.25)
	ifl := positres.AnalyzeIEEEFlip(positres.Binary32, ib, 31)
	fmt.Printf("ieee32 sign flip: %g -> %g (rel err exactly %g)\n\n", ifl.OldVal, ifl.NewVal, ifl.RelErr)

	// Fig. 20/21: the sign-flip error grows exponentially with regime
	// size, because the sign variable multiplies the whole exponent of
	// eq. (2).
	fmt.Println("posit32 sign-bit flip error by regime size k (values 1.3 * 2^(4(k-1))):")
	fmt.Printf("%4s %14s %14s %14s %10s\n", "k", "value", "flipped value", "abs err", "rel err")
	for k := 1; k <= 7; k++ {
		v := math.Ldexp(1.3, 4*(k-1))
		b := uint64(positres.P32FromFloat64(v).Bits())
		pf := positres.AnalyzePositFlip(cfg, b, cfg.N-1)
		fmt.Printf("%4d %14.6g %14.6g %14.6g %10.4g\n", k, pf.OldVal, pf.NewVal, pf.AbsErr, pf.RelErr)
	}
	fmt.Println("\nvalues near 1 are barely hurt; large-regime posits are devastated (Fig. 20).")
}
