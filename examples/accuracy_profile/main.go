// accuracy_profile renders the paper's Fig. 7 (decimal accuracy vs
// magnitude for posit32 and binary32) and demonstrates the quire: the
// posit standard's exact accumulator, whose dot products do not depend
// on summation order — the reproducibility property the paper cites.
package main

import (
	"fmt"
	"math"

	"positres"
)

func main() {
	fmt.Println(positres.Fig7().Render())

	// Quire demo: a dot product designed to destroy naive float32 and
	// posit32 accumulation through catastrophic cancellation.
	// Terms: n large positives, then the tiny value, then the n
	// matching negatives — left-to-right accumulation absorbs the tiny
	// term into the huge running sum and loses it forever.
	n := 64
	a := make([]positres.Posit32, 0, 2*n+1)
	bvec := make([]positres.Posit32, 0, 2*n+1)
	one := positres.P32FromFloat64(1)
	big := positres.P32FromFloat64(math.Ldexp(1.5, 40))
	for i := 0; i < n; i++ {
		a = append(a, big)
		bvec = append(bvec, one)
	}
	tiny := positres.P32FromFloat64(math.Ldexp(1, -40))
	a = append(a, tiny)
	bvec = append(bvec, one)
	for i := 0; i < n; i++ {
		a = append(a, big.Neg())
		bvec = append(bvec, one)
	}

	// Exact answer: the ±big pairs cancel; only tiny remains.
	exact := math.Ldexp(1, -40)

	// Naive left-to-right posit accumulation.
	acc := positres.P32FromFloat64(0)
	for i := range a {
		acc = acc.Add(a[i].Mul(bvec[i]))
	}

	// Quire accumulation: one rounding at the very end.
	q := positres.DotP32(a, bvec)

	// Naive float32 accumulation for contrast.
	var f32 float32
	for i := range a {
		f32 += float32(a[i].Float64()) * float32(bvec[i].Float64())
	}

	fmt.Printf("cancellation dot product (true answer %.6g):\n", exact)
	fmt.Printf("  naive posit32 sum: %.6g\n", acc.Float64())
	fmt.Printf("  naive float32 sum: %.6g\n", float64(f32))
	fmt.Printf("  quire dot product: %.6g   <- exact\n\n", q.Float64())

	// Order independence: shuffle the terms; the quire answer is
	// bit-identical.
	qr := positres.NewQuire(positres.Std32)
	for i := len(a) - 1; i >= 0; i-- {
		qr.AddProduct(uint64(a[i].Bits()), uint64(bvec[i].Bits()))
	}
	fmt.Printf("quire, reversed order: %.6g (bit-identical: %v)\n",
		positres.P32FromBits(uint32(qr.ToPosit())).Float64(),
		uint32(qr.ToPosit()) == q.Bits())
}
