// campaign_mini runs an end-to-end reduced fault-injection campaign —
// generate synthetic fields, inject faults at every bit for both
// formats, and render the paper's Fig. 10-style comparison plus the
// regime-bucketed analysis — all in a couple of seconds.
package main

import (
	"fmt"
	"os"

	"positres"
)

func main() {
	b := positres.QuickBudget

	fmt.Println("Synthetic dataset summary (paper Table 1, reduced sample):")
	fmt.Println(positres.Table1(b).Render())

	fmt.Println(positres.Fig10(b).Render())
	fmt.Println(positres.Fig11(b).Render())
	fmt.Println(positres.Fig14(b).Render())
	fmt.Println(positres.Fig20(b).Render())

	// Persist one campaign's raw trials as CSV, as the paper's harness
	// does for offline analysis.
	field, err := positres.LookupField("CESM/RELHUM")
	if err != nil {
		panic(err)
	}
	data := positres.WidenFloat32(field.Generate(b.DatasetN, b.Seed))
	codec, err := positres.LookupFormat("posit32")
	if err != nil {
		panic(err)
	}
	cfg := positres.DefaultCampaignConfig()
	cfg.TrialsPerBit = b.TrialsPerBit
	res, err := positres.RunCampaign(cfg, codec, field.Key(), data)
	if err != nil {
		panic(err)
	}
	f, err := os.CreateTemp("", "positres-trials-*.csv")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := positres.WriteTrialsCSV(f, res.Trials); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %d trial records to %s\n", len(res.Trials), f.Name())
}
