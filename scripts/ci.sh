#!/bin/sh
# ci.sh — the full local CI pipeline, invoked by `make ci`.
#
# Runs every gate in order and fails fast: formatting, vet, build,
# positlint (including a self-test that the linter still fires on its
# fixtures), the positbench smoke (archived as artifacts/BENCH_PR10.json,
# with an informational trajectory print against the committed
# baseline), the wire and store fuzz smokes, the bounded-memory
# columnar-store smoke (a 10⁷-trial campaign under GOMEMLIMIT whose
# store-rendered CSV must hash identically to the direct encoder), the
# positload chaos smoke, the short test suite, the race-detector pass,
# and the e2e battery — kill-and-resume campaign, kill-and-restart
# positserve, dead-worker cluster fan-out, and the chaos-and-soak load
# run. Each step prints a banner so failures are attributable at a
# glance.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
step=0

banner() {
	step=$((step + 1))
	echo ""
	echo "=== ci [$step] $* ==="
}

banner "gofmt: no formatting drift"
fmt_drift=$(gofmt -l .)
if [ -n "$fmt_drift" ]; then
	echo "gofmt drift in:"
	echo "$fmt_drift"
	exit 1
fi
echo "clean"

banner "go vet ./..."
$GO vet ./...

banner "go build ./..."
$GO build ./...

banner "positlint ./..."
$GO run ./cmd/positlint ./...

banner "positlint JSON artifact: artifacts/positlint.json"
mkdir -p artifacts
$GO run ./cmd/positlint -format json ./... >artifacts/positlint.json
grep -q '"schema": "positlint-diag/v1"' artifacts/positlint.json || {
	echo "positlint JSON artifact missing schema tag"
	exit 1
}
echo "ok"

banner "positlint -prune: suppressions must all still match something"
$GO run ./cmd/positlint -prune ./...
echo "no stale suppressions"

banner "positlint self-test: fixtures must still trip the rules"
if $GO run ./cmd/positlint ./internal/lint/testdata/src/all >/dev/null 2>&1; then
	echo "positlint exited 0 on the all-rules fixture; the analyzer is broken"
	exit 1
fi
for rule in quireguard csvheader budgetscale errcode; do
	if $GO run ./cmd/positlint ./internal/lint/testdata/src/$rule >/dev/null 2>&1; then
		echo "positlint exited 0 on the $rule fixture; the $rule rule is broken"
		exit 1
	fi
done
echo "fixtures trip as expected"

banner "positbench smoke: benchmark driver runs and emits a valid baseline"
mkdir -p artifacts
bench_compare=""
if [ -f BENCH_PR9.json ]; then
	# Informational trajectory print against the committed previous
	# baseline; perf gating stays human judgement (docs/PERF.md).
	bench_compare="-compare BENCH_PR9.json"
fi
# shellcheck disable=SC2086 # bench_compare is intentionally word-split
$GO run ./cmd/positbench -smoke -out artifacts/BENCH_PR10.json $bench_compare
grep -q '"schema": "positres-bench/v1"' artifacts/BENCH_PR10.json || {
	echo "positbench baseline missing schema tag"
	exit 1
}
grep -q '"name": "wire_encode_shard"' artifacts/BENCH_PR10.json || {
	echo "positbench baseline missing the wire codec benches"
	exit 1
}
grep -q '"name": "store_append_shard"' artifacts/BENCH_PR10.json || {
	echo "positbench baseline missing the columnar store benches"
	exit 1
}
echo "ok (archived as artifacts/BENCH_PR10.json)"

banner "wire fuzz smoke: 5s over the binary frame decoder"
$GO test -run '^$' -fuzz FuzzDecodeFrame -fuzztime 5s ./internal/wire/

banner "store fuzz smoke: 5s each over the .pts footer index and opener"
$GO test -run '^$' -fuzz FuzzFooterIndex -fuzztime 5s ./internal/store/
$GO test -run '^$' -fuzz FuzzOpen -fuzztime 5s ./internal/store/

banner "store smoke: 10M-trial campaign, bounded memory, CSV byte-identical"
GOMEMLIMIT=256MiB $GO run ./cmd/positstore smoke \
	-format posit16 -n 1000000 -trials 625000 -bits-per-shard 1

banner "go test -short ./..."
$GO test -short ./...

banner "go test -race -short ./..."
$GO test -race -short ./...

banner "positload smoke: chaos soak against an in-process stack, artifact under artifacts/"
mkdir -p artifacts
$GO run ./cmd/positload -smoke -duration 3s -qps 40 -inject-workers 4 \
	-chaos-latency-p 0.10 -chaos-5xx-p 0.05 -chaos-reset-p 0.02 \
	-out artifacts/load.json >/dev/null
grep -q '"schema": "positres-load/v1"' artifacts/load.json || {
	echo "positload artifact missing schema tag"
	exit 1
}
if grep -q '"violations"' artifacts/load.json; then
	echo "positload smoke violated its error budget:"
	cat artifacts/load.json
	exit 1
fi
echo "ok"

banner "resume e2e: kill-and-resume must reproduce CSVs byte-for-byte"
./scripts/resume_e2e.sh

banner "serve e2e: kill-and-restart positserve must auto-resume byte-for-byte"
./scripts/serve_e2e.sh

banner "cluster e2e: distributed fan-out must survive a dead worker byte-for-byte"
./scripts/cluster_e2e.sh

banner "load e2e: chaos soak must hold its error budget byte-for-byte"
./scripts/load_e2e.sh

echo ""
echo "=== ci: all $step steps passed ==="
