#!/bin/sh
# load_e2e.sh — chaos-and-soak end-to-end proof for the hardened
# service stack, invoked by `make chaos-e2e` and as a `make ci` step
# (docs/RESILIENCE.md "Chaos & load"):
#   1. a plain single-node positserve runs the reference campaign to
#      completion — the serial baseline CSV;
#   2. a coordinator plus two workers runs under sustained positload
#      traffic, with chaos everywhere it is survivable by design:
#      the coordinator sits behind a chaosproxy injecting latency,
#      connection resets and synthetic 5xx (the client retry budget
#      absorbs these), and each worker sits behind a chaosproxy that
#      additionally truncates and corrupts shard CSV bodies (the
#      CRC-trailer integrity check turns these into retried shard
#      failures, never merged results);
#   3. one worker is hard-killed (SIGKILL) mid-soak, restarted on the
#      same address, and re-registers itself via POST /v1/workers
#      advertising its chaos-proxy URL;
#   4. positload's error budget must hold (exit 0, no violations) and
#      its artifact must carry the positres-load/v1 schema;
#   5. the soak's final campaign CSV must be byte-identical to the
#      serial baseline — corruption that slipped past the integrity
#      check would show up here;
#   6. the front proxy's stats dump must show it actually injected
#      faults (a chaos e2e that ran without chaos proves nothing);
#   7. the coordinator's /metrics must show nonzero binary wire
#      traffic (wire_frames, wire_bytes) and zero CSV fallbacks —
#      shards negotiated the packed encoding (docs/WIRE.md) even
#      through the corrupting proxies, whose frame damage surfaces as
#      retried shard failures, never as fallbacks or merged data.
#
# The front proxy deliberately carries no truncate/corrupt faults:
# only the /v1/shards path has the CRC trailer envelope, so body
# corruption is injected exactly where the design defends it.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
CURL="curl -sS"
TMP=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT

SERVE="$TMP/positserve"
PROXY="$TMP/chaosproxy"
LOAD="$TMP/positload"
$GO build -o "$SERVE" ./cmd/positserve
$GO build -o "$PROXY" ./cmd/chaosproxy
$GO build -o "$LOAD" ./cmd/positload

# The reference campaign: the exact spec positload submits (positload
# pins seed 7), big enough that the mid-soak worker kill lands inside
# a running campaign.
FIELD="CESM/CLOUD"
FORMAT="posit16"
N=50000
TRIALS=40
CSV_NAME="CESM_CLOUD_${FORMAT}.csv"
BODY="{\"fields\":[\"$FIELD\"],\"formats\":[\"$FORMAT\"],\"n\":$N,\"trials_per_bit\":$TRIALS,\"seed\":7}"

# start_proc <banner-prefix> <log> <cmd...> — launches a process whose
# first stdout line is "<prefix>: listening on http://HOST:PORT" and
# sets PROC_BASE/PROC_ADDR/PROC_PID.
start_proc() {
	prefix=$1
	log=$2
	shift 2
	"$@" >"$log" 2>&1 &
	PROC_PID=$!
	PIDS="$PIDS $PROC_PID"
	addr=""
	for _ in $(seq 1 100); do
		addr=$(sed -n "s|^$prefix: listening on http://||p" "$log" | head -n 1)
		[ -n "$addr" ] && break
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "$prefix never reported its address:"
		cat "$log"
		exit 1
	fi
	PROC_BASE="http://$addr"
	PROC_ADDR="$addr"
}

echo "--- serial baseline: plain single node, reference campaign"
start_proc positserve "$TMP/serial.log" "$SERVE" -addr 127.0.0.1:0 -data-dir "$TMP/serial"
SERIAL_BASE=$PROC_BASE
SERIAL_PID=$PROC_PID
mkdir -p "$TMP/baseline"
SERIAL_ID=$($CURL -X POST -d "$BODY" "$SERIAL_BASE/v1/campaigns" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' | head -n 1)
[ -n "$SERIAL_ID" ] || { echo "baseline submission returned no job id"; cat "$TMP/serial.log"; exit 1; }
for _ in $(seq 1 600); do
	state=$($CURL "$SERIAL_BASE/v1/campaigns/$SERIAL_ID" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -n 1)
	[ "$state" = "complete" ] && break
	sleep 0.1
done
[ "$state" = "complete" ] || { echo "baseline campaign never completed ($state)"; exit 1; }
$CURL -o "$TMP/baseline/$CSV_NAME" "$SERIAL_BASE/v1/campaigns/$SERIAL_ID/results?field=$FIELD&format=$FORMAT"
head -c 200 "$TMP/baseline/$CSV_NAME" | grep -q '^field,codec,' || {
	echo "baseline download is not a campaign CSV:"
	head -n 3 "$TMP/baseline/$CSV_NAME"
	exit 1
}
kill -TERM "$SERIAL_PID"

echo "--- chaos stack: 2 workers behind corrupting proxies, coordinator behind a faulting proxy"
start_proc positserve "$TMP/w1.log" "$SERVE" -addr 127.0.0.1:0 -data-dir "$TMP/w1"
W1_ADDR=$PROC_ADDR
W1_PID=$PROC_PID
start_proc positserve "$TMP/w2.log" "$SERVE" -addr 127.0.0.1:0 -data-dir "$TMP/w2"
W2_ADDR=$PROC_ADDR

# Worker proxies: body-level hostility (truncate + corrupt) plus some
# latency — the shard CRC envelope must catch every damaged body.
start_proc chaosproxy "$TMP/p1.log" "$PROXY" -target "http://$W1_ADDR" \
	-chaos-seed 11 -chaos-truncate-p 0.10 -chaos-corrupt-p 0.10 -chaos-latency-p 0.10
P1_BASE=$PROC_BASE
start_proc chaosproxy "$TMP/p2.log" "$PROXY" -target "http://$W2_ADDR" \
	-chaos-seed 12 -chaos-truncate-p 0.10 -chaos-corrupt-p 0.10 -chaos-latency-p 0.10
P2_BASE=$PROC_BASE

start_proc positserve "$TMP/coord.log" "$SERVE" -workers "$P1_BASE,$P2_BASE" \
	-addr 127.0.0.1:0 -data-dir "$TMP/coord" -campaign-workers 3 -heartbeat 500ms
COORD_BASE=$PROC_BASE

# Front proxy: connection-level hostility only (latency, resets,
# synthetic 5xx) — the client retry paths must absorb all of it.
start_proc chaosproxy "$TMP/front.log" "$PROXY" -target "$COORD_BASE" \
	-chaos-seed 13 -chaos-latency-p 0.20 -chaos-reset-p 0.02 -chaos-5xx-p 0.05
FRONT_BASE=$PROC_BASE
FRONT_PID=$PROC_PID

echo "--- soak: positload through the front proxy, worker kill + re-register mid-run"
mkdir -p "$TMP/chaos-out"
"$LOAD" -target "$FRONT_BASE" -duration 25s -qps 30 -inject-workers 4 \
	-campaign-field "$FIELD" -campaign-format "$FORMAT" -campaign-n "$N" -campaign-trials "$TRIALS" \
	-retry-attempts 5 -retry-base 50ms -max-error-rate 0.05 \
	-campaign-out "$TMP/chaos-out" -out "$TMP/load.json" >"$TMP/load.log" 2>&1 &
LOAD_PID=$!
PIDS="$PIDS $LOAD_PID"

sleep 8
echo "--- SIGKILL worker 1, restart on the same address, re-register via its proxy URL"
kill -9 "$W1_PID"
sleep 2
start_proc positserve "$TMP/w1b.log" "$SERVE" -addr "$W1_ADDR" -data-dir "$TMP/w1" \
	-register "$COORD_BASE" -advertise "$P1_BASE"
grep -q "registered with coordinator" "$TMP/w1b.log" || {
	for _ in $(seq 1 50); do
		grep -q "registered with coordinator" "$TMP/w1b.log" && break
		sleep 0.1
	done
}
grep -q "registered with coordinator" "$TMP/w1b.log" || {
	echo "restarted worker never re-registered:"
	cat "$TMP/w1b.log"
	exit 1
}
echo "worker 1 re-registered"

if ! wait "$LOAD_PID"; then
	echo "positload failed or violated its error budget:"
	cat "$TMP/load.log"
	exit 1
fi
cat "$TMP/load.log"

echo "--- artifact must carry the positres-load/v1 schema and an empty violation list"
grep -q '"schema": "positres-load/v1"' "$TMP/load.json" || {
	echo "artifact missing schema tag"
	cat "$TMP/load.json"
	exit 1
}
if grep -q '"violations"' "$TMP/load.json"; then
	echo "artifact records budget violations:"
	cat "$TMP/load.json"
	exit 1
fi
grep -q '"completed": 0' "$TMP/load.json" && {
	echo "no campaign completed during the soak:"
	cat "$TMP/load.json"
	exit 1
}
echo "artifact OK"

echo "--- soak CSV must be byte-identical to the serial baseline"
[ -s "$TMP/chaos-out/$CSV_NAME" ] || {
	echo "soak published no campaign CSV"
	ls -l "$TMP/chaos-out" || true
	exit 1
}
cmp "$TMP/baseline/$CSV_NAME" "$TMP/chaos-out/$CSV_NAME"
echo "identical: $CSV_NAME"

echo "--- coordinator /metrics must show binary wire traffic, no CSV fallbacks"
coord_metrics=$($CURL "$COORD_BASE/metrics")
echo "$coord_metrics" | grep -q '"wire_frames": [1-9]' || {
	echo "no binary wire frames recorded during the soak"
	echo "$coord_metrics"
	exit 1
}
echo "$coord_metrics" | grep -q '"wire_bytes": [1-9]' || {
	echo "wire_bytes is zero despite binary frames"
	echo "$coord_metrics"
	exit 1
}
echo "$coord_metrics" | grep -q '"wire_csv_fallbacks": 0' || {
	echo "CSV fallbacks recorded in an all-current fleet (version skew?)"
	echo "$coord_metrics"
	exit 1
}
echo "wire counters OK"

echo "--- the front proxy must actually have injected faults"
kill -TERM "$FRONT_PID"
for _ in $(seq 1 50); do
	grep -q "drained, exiting" "$TMP/front.log" && break
	sleep 0.1
done
grep -Eq '"(latencies|resets|synthetic_5xx)": [1-9]' "$TMP/front.log" || {
	echo "front proxy injected no faults — the soak ran without chaos:"
	cat "$TMP/front.log"
	exit 1
}
echo "chaos confirmed"

echo "load e2e: OK"
