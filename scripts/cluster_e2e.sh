#!/bin/sh
# cluster_e2e.sh — distributed fan-out end-to-end proof for positserve
# coordinator mode, invoked by `make cluster-e2e` and as a `make ci`
# step (docs/SERVICE.md "Coordinator / worker mode"):
#   1. a single-node server runs the reference campaign to completion —
#      the serial baseline;
#   2. a coordinator plus three workers runs the same campaign with
#      every shard dispatched over HTTP: two workers are named on the
#      coordinator's -workers flag, the third self-registers via
#      -register (POST /v1/workers), so both enrolment paths are
#      exercised;
#   3. one worker is hard-killed (SIGKILL) mid-campaign — the
#      coordinator must retry its failed dispatches on the surviving
#      workers and still complete;
#   4. the distributed CSVs must be byte-identical to the serial ones;
#   5. the coordinator's /metrics must carry per-worker cluster gauges,
#      a nonzero reassignment count after the kill, and nonzero binary
#      wire counters — every shard in a current-version fleet travels
#      as a packed frame (docs/WIRE.md), so wire_frames > 0 and
#      wire_bytes > 0 with zero CSV fallbacks.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
CURL="curl -sS"
TMP=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT

BIN="$TMP/positserve"
$GO build -o "$BIN" ./cmd/positserve

# Same field/formats as serve_e2e.sh but 2 bits per shard (24 shards:
# 16/2 + 32/2) and a much larger field/trial budget, so shards take
# long enough that killing a worker mid-run leaves real work to
# re-dispatch.
BODY='{"fields":["CESM/CLOUD"],"formats":["posit16","ieee32"],"n":200000,"trials_per_bit":400,"seed":5,"bits_per_shard":2}'

# start_node <data-dir> <log> [extra flags...] — launches positserve on
# a random port and sets NODE_BASE/NODE_PID.
start_node() {
	dir=$1
	log=$2
	shift 2
	"$BIN" -addr 127.0.0.1:0 -data-dir "$dir" "$@" >"$log" 2>&1 &
	NODE_PID=$!
	PIDS="$PIDS $NODE_PID"
	addr=""
	for _ in $(seq 1 100); do
		addr=$(sed -n 's|^positserve: listening on http://||p' "$log" | head -n 1)
		[ -n "$addr" ] && break
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "server never reported its address:"
		cat "$log"
		exit 1
	fi
	NODE_BASE="http://$addr"
}

# submit_campaign <base> — POSTs BODY and prints the job id.
submit_campaign() {
	$CURL -X POST -d "$BODY" "$1/v1/campaigns" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' | head -n 1
}

# wait_complete <base> <id> — polls campaign status until "complete".
wait_complete() {
	for _ in $(seq 1 600); do
		state=$($CURL "$1/v1/campaigns/$2" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -n 1)
		[ "$state" = "complete" ] && return 0
		if [ "$state" = "failed" ] || [ "$state" = "cancelled" ]; then
			echo "campaign reached terminal state $state"
			$CURL "$1/v1/campaigns/$2"
			exit 1
		fi
		sleep 0.1
	done
	echo "campaign $2 never completed"
	exit 1
}

# fetch_csvs <base> <outdir> <id> — downloads both result CSVs.
fetch_csvs() {
	$CURL -o "$2/posit16.csv" "$1/v1/campaigns/$3/results?field=CESM/CLOUD&format=posit16"
	$CURL -o "$2/ieee32.csv" "$1/v1/campaigns/$3/results?field=CESM/CLOUD&format=ieee32"
	head -c 200 "$2/posit16.csv" | grep -q '^field,codec,' || {
		echo "downloaded posit16.csv is not a campaign CSV:"
		head -n 3 "$2/posit16.csv"
		exit 1
	}
}

echo "--- serial baseline: single node, campaign to completion"
start_node "$TMP/serial" "$TMP/serial.log"
SERIAL_BASE=$NODE_BASE
SERIAL_PID=$NODE_PID
SERIAL_ID=$(submit_campaign "$SERIAL_BASE")
[ -n "$SERIAL_ID" ] || { echo "serial submission returned no job id"; cat "$TMP/serial.log"; exit 1; }
wait_complete "$SERIAL_BASE" "$SERIAL_ID"
mkdir -p "$TMP/serial-csv"
fetch_csvs "$SERIAL_BASE" "$TMP/serial-csv" "$SERIAL_ID"
kill -TERM "$SERIAL_PID"

echo "--- cluster: three workers (two static, one self-registered) + coordinator"
start_node "$TMP/w1" "$TMP/w1.log"
W1_BASE=$NODE_BASE
W1_PID=$NODE_PID
start_node "$TMP/w2" "$TMP/w2.log"
W2_BASE=$NODE_BASE

# -campaign-workers 3: dispatch concurrency must match the fleet size,
# not the coordinator's own core count (shard compute happens remotely).
start_node "$TMP/coord" "$TMP/coord.log" -workers "$W1_BASE,$W2_BASE" -campaign-workers 3 -heartbeat 500ms
COORD_BASE=$NODE_BASE

# Third worker enrols itself over the wire (POST /v1/workers).
start_node "$TMP/w3" "$TMP/w3.log" -register "$COORD_BASE"

# The coordinator must list all three workers before we submit.
nworkers=0
for _ in $(seq 1 100); do
	nworkers=$($CURL "$COORD_BASE/v1/workers" | grep -c '"url":' || true)
	[ "$nworkers" -eq 3 ] && break
	sleep 0.1
done
if [ "$nworkers" -ne 3 ]; then
	echo "coordinator lists $nworkers workers, want 3:"
	$CURL "$COORD_BASE/v1/workers"
	exit 1
fi
echo "3 workers enrolled"

CLUSTER_ID=$(submit_campaign "$COORD_BASE")
[ -n "$CLUSTER_ID" ] || { echo "cluster submission returned no job id"; cat "$TMP/coord.log"; exit 1; }

echo "--- SIGKILL worker 1 mid-campaign"
# Wait until real shards have completed so the victim has been in the
# rotation, then kill it with work still outstanding (24 shards total).
for _ in $(seq 1 600); do
	done_shards=$($CURL "$COORD_BASE/v1/campaigns/$CLUSTER_ID" | sed -n 's/.*"done": \([0-9]*\).*/\1/p' | head -n 1)
	[ -n "$done_shards" ] && [ "$done_shards" -ge 2 ] && break
	sleep 0.05
done
kill -9 "$W1_PID"
echo "killed worker 1 after $done_shards shards"

wait_complete "$COORD_BASE" "$CLUSTER_ID"
mkdir -p "$TMP/cluster-csv"
fetch_csvs "$COORD_BASE" "$TMP/cluster-csv" "$CLUSTER_ID"

echo "--- coordinator /metrics must expose cluster gauges"
metrics=$($CURL "$COORD_BASE/metrics")
echo "$metrics" | grep -q '"schema": "positres-telemetry/v1"' || {
	echo "/metrics missing the positres-telemetry/v1 snapshot"
	exit 1
}
cluster_workers=$(echo "$metrics" | grep -c '"shards_assigned":' || true)
if [ "$cluster_workers" -ne 3 ]; then
	echo "cluster metrics cover $cluster_workers workers, want 3"
	echo "$metrics"
	exit 1
fi
echo "$metrics" | grep -q '"reassignments": [1-9]' || {
	echo "no shard reassignments recorded after killing a worker"
	echo "$metrics"
	exit 1
}
echo "$metrics" | grep -q '"wire_frames": [1-9]' || {
	echo "no binary wire frames recorded; shards did not negotiate the packed encoding"
	echo "$metrics"
	exit 1
}
echo "$metrics" | grep -q '"wire_bytes": [1-9]' || {
	echo "wire_bytes is zero despite binary frames"
	echo "$metrics"
	exit 1
}
echo "$metrics" | grep -q '"wire_csv_fallbacks": 0' || {
	echo "CSV fallbacks recorded in an all-current fleet (version skew?)"
	echo "$metrics"
	exit 1
}
echo "cluster metrics OK (3 workers, reassignments recorded, all shards binary)"

echo "--- distributed outputs must be byte-identical to the serial baseline"
for name in posit16.csv ieee32.csv; do
	cmp "$TMP/serial-csv/$name" "$TMP/cluster-csv/$name"
	echo "identical: $name"
done

echo "cluster e2e: OK"
