#!/bin/sh
# serve_e2e.sh — kill-and-restart end-to-end proof for positserve,
# invoked by `make serve-e2e` and as a `make ci` step. The HTTP twin
# of resume_e2e.sh:
#   1. a reference server runs a campaign to completion over HTTP;
#      /metrics must carry a positres-telemetry/v1 snapshot while the
#      campaign is in flight;
#   2. a second server is hard-crashed mid-campaign
#      (-debug-crash-after: os.Exit(137) with no drain) — journal
#      records must exist, no result CSV may be served or published;
#   3. a third server on the same -data-dir must auto-resume the job
#      to completion with no resubmission;
#   4. the resumed CSVs must be byte-identical to the reference ones;
#   5. SIGTERM must drain each surviving server to exit 0.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
CURL="curl -sS"
TMP=$(mktemp -d)
SRV_PID=""
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
	rm -rf "$TMP"
}
trap cleanup EXIT

BIN="$TMP/positserve"
$GO build -o "$BIN" ./cmd/positserve

# Same campaign as resume_e2e.sh: two codecs, 12 shards (16/4 + 32/4),
# so a crash after 2 shards leaves real work unfinished.
BODY='{"fields":["CESM/CLOUD"],"formats":["posit16","ieee32"],"n":20000,"trials_per_bit":100,"seed":5,"bits_per_shard":4}'

# start_server <data-dir> <log> [extra flags...] — launches positserve
# on a random port and sets BASE/SRV_PID.
start_server() {
	dir=$1
	log=$2
	shift 2
	"$BIN" -addr 127.0.0.1:0 -data-dir "$dir" "$@" >"$log" 2>&1 &
	SRV_PID=$!
	addr=""
	for _ in $(seq 1 100); do
		addr=$(sed -n 's|^positserve: listening on http://||p' "$log" | head -n 1)
		[ -n "$addr" ] && break
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "server never reported its address:"
		cat "$log"
		exit 1
	fi
	BASE="http://$addr"
}

# wait_complete <id> — polls campaign status until "complete".
wait_complete() {
	for _ in $(seq 1 600); do
		state=$($CURL "$BASE/v1/campaigns/$1" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -n 1)
		[ "$state" = "complete" ] && return 0
		if [ "$state" = "failed" ] || [ "$state" = "cancelled" ]; then
			echo "campaign reached terminal state $state"
			$CURL "$BASE/v1/campaigns/$1"
			exit 1
		fi
		sleep 0.1
	done
	echo "campaign $1 never completed"
	exit 1
}

# fetch_csvs <outdir> <id> — downloads both result CSVs.
fetch_csvs() {
	$CURL -o "$1/posit16.csv" "$BASE/v1/campaigns/$2/results?field=CESM/CLOUD&format=posit16"
	$CURL -o "$1/ieee32.csv" "$BASE/v1/campaigns/$2/results?field=CESM/CLOUD&format=ieee32"
	head -c 200 "$1/posit16.csv" | grep -q '^field,codec,' || {
		echo "downloaded posit16.csv is not a campaign CSV:"
		head -n 3 "$1/posit16.csv"
		exit 1
	}
}

# submit_campaign — POSTs BODY and prints the job id.
submit_campaign() {
	$CURL -X POST -d "$BODY" "$BASE/v1/campaigns" | sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' | head -n 1
}

echo "--- reference server: run campaign to completion over HTTP"
start_server "$TMP/ref" "$TMP/ref.log"
REF_ID=$(submit_campaign)
[ -n "$REF_ID" ] || { echo "submission returned no job id"; cat "$TMP/ref.log"; exit 1; }

# Acceptance: /metrics serves a positres-telemetry/v1 snapshot during
# the run.
$CURL "$BASE/metrics" | grep -q '"schema": "positres-telemetry/v1"' || {
	echo "/metrics missing the positres-telemetry/v1 snapshot"
	exit 1
}
echo "metrics snapshot OK"

wait_complete "$REF_ID"
mkdir -p "$TMP/ref-csv"
fetch_csvs "$TMP/ref-csv" "$REF_ID"

echo "--- SIGTERM must drain the reference server to exit 0"
kill -TERM "$SRV_PID"
status=0
wait "$SRV_PID" || status=$?
SRV_PID=""
if [ "$status" -ne 0 ]; then
	echo "expected exit 0 from graceful drain, got $status"
	cat "$TMP/ref.log"
	exit 1
fi

echo "--- crash server: simulated hard crash after 2 shards"
start_server "$TMP/crash" "$TMP/crash.log" -campaign-workers 1 -debug-crash-after 2
CRASH_ID=$(submit_campaign)
[ -n "$CRASH_ID" ] || { echo "crash submission returned no job id"; exit 1; }
status=0
wait "$SRV_PID" || status=$?
SRV_PID=""
if [ "$status" -ne 137 ]; then
	echo "expected exit 137 from the crash server, got $status"
	cat "$TMP/crash.log"
	exit 1
fi
if ! ls "$TMP/crash/jobs/$CRASH_ID/state/journal/"*.rec >/dev/null 2>&1; then
	echo "no journal records survived the crash"
	exit 1
fi
if ls "$TMP/crash/jobs/$CRASH_ID/"*.csv >/dev/null 2>&1; then
	echo "partial CSV published after a crash"
	exit 1
fi

echo "--- restart on the same data dir: job must auto-resume, no resubmission"
start_server "$TMP/crash" "$TMP/restart.log"
wait_complete "$CRASH_ID"
$CURL "$BASE/v1/campaigns/$CRASH_ID" | grep -q '"resumed": [1-9]' || {
	echo "resumed shard count is zero; the journal was not replayed"
	$CURL "$BASE/v1/campaigns/$CRASH_ID"
	exit 1
}
mkdir -p "$TMP/crash-csv"
fetch_csvs "$TMP/crash-csv" "$CRASH_ID"
kill -TERM "$SRV_PID"
status=0
wait "$SRV_PID" || status=$?
SRV_PID=""
[ "$status" -eq 0 ] || { echo "restart server drain exited $status"; exit 1; }

echo "--- resumed outputs must be byte-identical to the reference"
for name in posit16.csv ieee32.csv; do
	cmp "$TMP/ref-csv/$name" "$TMP/crash-csv/$name"
	echo "identical: $name"
done

echo "serve e2e: OK"
