#!/bin/sh
# resume_e2e.sh — kill-and-resume end-to-end proof, invoked by
# `make resume-e2e` and as a `make ci` step.
#
# Drives the real positcampaign binary through the resilience story
# documented in docs/RESILIENCE.md:
#   1. a reference run, uninterrupted;
#   2. a hard-crash run (-debug-crash-after: os.Exit(137) mid-campaign)
#      — journal records must exist, no CSV may be visible;
#   3. resume of the crash run;
#   4. a SIGINT run (-debug-sigint-after: the real signal path) — exit
#      130, manifest "cancelled", no CSV visible;
#   5. resume of the SIGINT run;
#   6. byte-for-byte cmp of every resumed CSV against the reference.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

BIN="$TMP/positcampaign"
$GO build -o "$BIN" ./cmd/positcampaign

# Two codecs so the campaign spans 12 shards (16/4 + 32/4) — enough
# that every interruption leaves genuinely unfinished work behind.
FLAGS="-field CESM/CLOUD -formats posit16,ieee32 -n 20000 -trials 100 -seed 5 -bits-per-shard 4"

echo "--- reference run (uninterrupted)"
# shellcheck disable=SC2086 # FLAGS is deliberately word-split
"$BIN" $FLAGS -out "$TMP/ref" >/dev/null
ls "$TMP/ref/"*.csv >/dev/null

echo "--- crash run: simulated hard crash after 2 shards"
status=0
"$BIN" $FLAGS -out "$TMP/crash" -debug-crash-after 2 >/dev/null 2>&1 || status=$?
if [ "$status" -ne 137 ]; then
	echo "expected exit 137 from the crash run, got $status"
	exit 1
fi
if ! ls "$TMP/crash/journal/"*.rec >/dev/null 2>&1; then
	echo "no journal records survived the crash"
	exit 1
fi
if ls "$TMP/crash/"*.csv >/dev/null 2>&1; then
	echo "partial CSV observable at the final path after a crash"
	exit 1
fi

echo "--- resume after crash"
"$BIN" $FLAGS -out "$TMP/crash" -resume >/dev/null

echo "--- SIGINT run: real signal after 1 shard, sequential workers"
status=0
"$BIN" $FLAGS -out "$TMP/sigint" -debug-sigint-after 1 -workers 1 >/dev/null 2>&1 || status=$?
if [ "$status" -ne 130 ]; then
	echo "expected exit 130 from the SIGINT run, got $status"
	exit 1
fi
if ! grep -q '"state": "cancelled"' "$TMP/sigint/manifest.json"; then
	echo "manifest does not record the cancellation:"
	cat "$TMP/sigint/manifest.json"
	exit 1
fi
if ls "$TMP/sigint/"*.csv >/dev/null 2>&1; then
	echo "CSV observable at the final path after SIGINT"
	exit 1
fi

echo "--- resume after SIGINT"
"$BIN" $FLAGS -out "$TMP/sigint" -resume >/dev/null

echo "--- resumed outputs must be byte-identical to the reference"
for f in "$TMP/ref/"*.csv; do
	name=$(basename "$f")
	cmp "$f" "$TMP/crash/$name"
	cmp "$f" "$TMP/sigint/$name"
	echo "identical: $name"
done

echo "resume e2e: OK"
