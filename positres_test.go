package positres_test

// Facade tests: exercise the public API exactly as a downstream user
// (or the examples) would, without touching internal packages.

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"positres"
)

func TestFacadePositArithmetic(t *testing.T) {
	p := positres.P32FromFloat64(186.25)
	if p.Float64() != 186.25 {
		t.Fatal("round trip")
	}
	if got := p.Add(positres.P32FromFloat64(13.75)).Float64(); got != 200 {
		t.Errorf("add: %v", got)
	}
	if got := p.Mul(positres.P32FromFloat64(2)).Float64(); got != 372.5 {
		t.Errorf("mul: %v", got)
	}
	if s := positres.PositBitString(positres.Std32, uint64(p.Bits())); !strings.HasPrefix(s, "0|110|11|") {
		t.Errorf("bit string: %s", s)
	}
	f := positres.DecodePositFields(positres.Std32, uint64(p.Bits()))
	if f.K != 2 || f.R != 1 {
		t.Errorf("fields: %+v", f)
	}
	// All four widths are exposed.
	if positres.P8FromFloat64(2).Float64() != 2 || positres.P16FromFloat64(2).Float64() != 2 ||
		positres.P64FromFloat64(2).Float64() != 2 {
		t.Error("width constructors")
	}
	if positres.P8FromBits(0x80).Float64() == positres.P8FromBits(0x80).Float64() {
		// NaR compares unequal through NaN; just ensure IsNaR.
		if !positres.P8FromBits(0x80).IsNaR() {
			t.Error("NaR")
		}
	}
}

func TestFacadeQuire(t *testing.T) {
	q := positres.NewQuire(positres.Std32)
	q.AddProduct(uint64(positres.P32FromFloat64(3).Bits()), uint64(positres.P32FromFloat64(4).Bits()))
	q.AddPosit(uint64(positres.P32FromFloat64(2).Bits()))
	if got := positres.P32FromBits(uint32(q.ToPosit())).Float64(); got != 14 {
		t.Errorf("quire: %v", got)
	}
	a := []positres.Posit32{positres.P32FromFloat64(1), positres.P32FromFloat64(2)}
	b := []positres.Posit32{positres.P32FromFloat64(10), positres.P32FromFloat64(20)}
	if positres.DotP32(a, b).Float64() != 50 {
		t.Error("DotP32")
	}
	if positres.SumP32(a).Float64() != 3 {
		t.Error("SumP32")
	}
}

func TestFacadeFormatsAndFields(t *testing.T) {
	names := positres.FormatNames()
	if len(names) < 10 {
		t.Fatalf("formats: %v", names)
	}
	c, err := positres.LookupFormat("posit32")
	if err != nil || c.Width() != 32 {
		t.Fatal("LookupFormat")
	}
	if _, err := positres.LookupFormat("nope"); err == nil {
		t.Error("unknown format should error")
	}
	fields := positres.DatasetFields()
	if len(fields) != 16 {
		t.Fatalf("fields: %d", len(fields))
	}
	f, err := positres.LookupField("CESM/CLOUD")
	if err != nil {
		t.Fatal(err)
	}
	data := positres.WidenFloat32(f.Generate(1000, 1))
	if len(data) != 1000 {
		t.Fatal("generate")
	}
	s := positres.Summarize(data)
	if s.Count != 1000 || s.Min < 0 || s.Max > 1 {
		t.Errorf("summary: %+v", s)
	}
}

func TestFacadeCampaign(t *testing.T) {
	f, err := positres.LookupField("Hurricane/Vf30")
	if err != nil {
		t.Fatal(err)
	}
	data := positres.WidenFloat32(f.Generate(5000, 1))
	codec, err := positres.LookupFormat("posit16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := positres.DefaultCampaignConfig()
	cfg.TrialsPerBit = 20
	res, err := positres.RunCampaign(cfg, codec, f.Key(), data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 16*20 {
		t.Fatalf("trials: %d", len(res.Trials))
	}
	aggs := positres.AggregateByBit(res.Trials)
	if len(aggs) != 16 {
		t.Fatalf("aggs: %d", len(aggs))
	}
	// CSV round trip through the facade.
	var buf bytes.Buffer
	if err := positres.WriteTrialsCSV(&buf, res.Trials); err != nil {
		t.Fatal(err)
	}
	back, err := positres.ReadTrialsCSV(&buf)
	if err != nil || len(back) != len(res.Trials) {
		t.Fatalf("csv: %v, %d", err, len(back))
	}
}

func TestFacadeAnalysis(t *testing.T) {
	b := uint64(positres.P32FromFloat64(0.5).Bits())
	pf := positres.AnalyzePositFlip(positres.Std32, b, 30)
	if pf.OldVal != 0.5 || pf.RelErr <= 0 {
		t.Errorf("posit flip: %+v", pf)
	}
	sweep := positres.SweepPositFlips(positres.Std32, b)
	if len(sweep) != 32 {
		t.Fatal("posit sweep")
	}
	ifl := positres.AnalyzeIEEEFlip(positres.Binary32, positres.Binary32.Encode(0.5), 31)
	if ifl.NewVal != -0.5 || ifl.RelErr != 2 {
		t.Errorf("ieee flip: %+v", ifl)
	}
	if len(positres.SweepIEEEFlips(positres.Binary16, positres.Binary16.Encode(1))) != 16 {
		t.Fatal("ieee sweep")
	}
	// Binary formats exposed.
	if positres.BFloat16.Width() != 16 || positres.Binary64.Width() != 64 {
		t.Error("format geometry")
	}
}

func TestFacadeFigures(t *testing.T) {
	q := positres.Budget{DatasetN: 10000, TrialsPerBit: 10, Seed: 1}
	if out := positres.Fig3().Render(); !strings.Contains(out, "186.25") {
		t.Error("Fig3")
	}
	if out := positres.Fig7().Render(); !strings.Contains(out, "decimal digits") {
		t.Error("Fig7")
	}
	if c := positres.Fig10(q); len(c.Series) != 8 {
		t.Error("Fig10")
	}
	if tb := positres.Table1(q); len(tb.Rows) != 16 {
		t.Error("Table1")
	}
	if p := positres.Fig20(q); len(p.Groups) < 1 {
		t.Error("Fig20")
	}
	if tb := positres.SolverImpactTable(q); len(tb.Rows) != 24 {
		t.Error("SolverImpactTable")
	}
	if tb := positres.ProtectionTable(q); len(tb.Rows) != 16 {
		t.Error("ProtectionTable")
	}
	if tb := positres.SoftErrorTable(q); len(tb.Rows) != 4 {
		t.Error("SoftErrorTable")
	}
	// Budgets exported.
	if positres.PaperBudget.TrialsPerBit != 313 || positres.QuickBudget.TrialsPerBit <= 0 {
		t.Error("budgets")
	}
}

func TestFacadeFMAAndConvert(t *testing.T) {
	p := positres.P32FromFloat64(1 + math.Ldexp(1, -20))
	r := p.Mul(p)
	res := p.FMA(p, r.Neg())
	if res.IsZero() {
		t.Error("facade FMA lost residue")
	}
	if p.ToP64().ToP32() != p {
		t.Error("width conversion")
	}
	if positres.P32FromInt64(7).Float64() != 7 || positres.P32FromFloat64(7.6).Int64() != 8 {
		t.Error("int conversion")
	}
	if p.NextUp().NextDown() != p {
		t.Error("next")
	}
}

func TestFacadeDurableCampaign(t *testing.T) {
	// One canonical spec drives validation, durable execution, and the
	// service API alike.
	cs := &positres.CampaignSpec{
		Fields:       []string{"CESM/CLOUD"},
		Formats:      []string{"posit8"},
		N:            128,
		TrialsPerBit: 2,
		Seed:         3,
	}
	if verr := cs.Validate(); verr != nil {
		t.Fatalf("Validate: %s: %s", verr.Code, verr.Message)
	}
	specs := positres.ExpandSpecs(cs)
	if len(specs) != 1 {
		t.Fatalf("ExpandSpecs = %d specs, want 1", len(specs))
	}

	rep, err := positres.RunDurable(context.Background(), positres.RunnerConfig{
		Spec: cs, Dir: t.TempDir(), Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() || len(rep.Results) != 1 || rep.Results[0] == nil {
		t.Fatalf("report = %+v", rep)
	}
	if got := len(rep.Results[0].Trials); got != 8*2 {
		t.Fatalf("trials = %d, want 16", got)
	}

	// Bad specs fail with the stable error code shared with the CLI
	// and the HTTP API.
	bad := &positres.CampaignSpec{Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit7"}}
	verr := bad.Validate()
	if verr == nil || verr.Code != "unknown_format" {
		t.Fatalf("Validate = %v, want unknown_format", verr)
	}

	// The service client constructs (no server needed for the type
	// surface check).
	var client *positres.ServeClient = positres.NewServeClient("http://127.0.0.1:1", nil)
	if client.BaseURL() != "http://127.0.0.1:1" {
		t.Fatalf("BaseURL = %q", client.BaseURL())
	}
	var apiErr *positres.ServeAPIError = &positres.ServeAPIError{Status: 429, Code: "queue_full", Message: "x"}
	if !strings.Contains(apiErr.Error(), "queue_full") {
		t.Fatalf("APIError.Error() = %q", apiErr.Error())
	}
}
