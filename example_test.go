package positres_test

// Runnable godoc examples for the public API. Each executes as a test
// and its output is verified against the comment.

import (
	"fmt"

	"positres"
)

func ExampleP32FromFloat64() {
	p := positres.P32FromFloat64(186.25)
	fmt.Println(p.Float64())
	fmt.Println(positres.PositBitString(positres.Std32, uint64(p.Bits())))
	// Output:
	// 186.25
	// 0|110|11|01110100100000000000000000
}

func ExamplePosit32_Add() {
	a := positres.P32FromFloat64(0.1)
	b := positres.P32FromFloat64(0.2)
	fmt.Printf("%.10f\n", a.Add(b).Float64())
	// Output:
	// 0.3000000007
}

func ExampleAnalyzePositFlip() {
	// Flip the terminating regime bit of a large posit: the regime
	// expands and the magnitude explodes (paper Fig. 12).
	bits := uint64(positres.P32FromFloat64(186250).Bits())
	f := positres.DecodePositFields(positres.Std32, bits)
	rkPos := positres.Std32.N - 2 - f.K
	flip := positres.AnalyzePositFlip(positres.Std32, bits, rkPos)
	fmt.Println(flip.Class)
	fmt.Printf("%.0f -> %.0f\n", flip.OldVal, flip.NewVal)
	// Output:
	// regime-expand
	// 186250 -> 7725696
}

func ExampleAnalyzeIEEEFlip() {
	// Flip an upper exponent bit of an IEEE float: ×2^64.
	bits := positres.Binary32.Encode(186.25)
	flip := positres.AnalyzeIEEEFlip(positres.Binary32, bits, 29)
	fmt.Println(flip.Field)
	fmt.Printf("%.4g\n", flip.NewVal)
	// Output:
	// exponent
	// 3.436e+21
}

func ExampleDotP32() {
	a := []positres.Posit32{
		positres.P32FromFloat64(1.5),
		positres.P32FromFloat64(-2),
	}
	b := []positres.Posit32{
		positres.P32FromFloat64(4),
		positres.P32FromFloat64(2.25),
	}
	// The quire accumulates exactly; one rounding at the end.
	fmt.Println(positres.DotP32(a, b).Float64())
	// Output:
	// 1.5
}

func ExampleRunCampaign() {
	field, _ := positres.LookupField("Hurricane/Vf30")
	data := positres.WidenFloat32(field.Generate(10000, 1))
	codec, _ := positres.LookupFormat("posit32")

	cfg := positres.DefaultCampaignConfig()
	cfg.TrialsPerBit = 50
	res, _ := positres.RunCampaign(cfg, codec, field.Key(), data)

	aggs := positres.AggregateByBit(res.Trials)
	fmt.Println(len(res.Trials), "trials over", len(aggs), "bit positions")
	// The sign bit is always position 31.
	fmt.Println(aggs[31].Bit, aggs[31].Trials)
	// Output:
	// 1600 trials over 32 bit positions
	// 31 50
}

func ExampleLookupFormat() {
	c, _ := positres.LookupFormat("posit16")
	fmt.Println(c.Name(), c.Width())
	bits := c.Encode(2.5)
	fmt.Println(c.Decode(bits))
	fmt.Println(c.FieldAt(bits, 15), c.FieldAt(bits, 0))
	// Output:
	// posit16 16
	// 2.5
	// sign fraction
}
