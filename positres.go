// Package positres is a pure-Go reproduction of "Evaluating the
// Resiliency of Posits for Scientific Computing" (Schlueter, Poulos,
// Calhoun — SC-W 2023). It bundles:
//
//   - a from-scratch posit arithmetic library implementing the 2022
//     posit standard (8/16/32/64-bit, es = 2, plus legacy es values),
//     with correctly rounded conversions and arithmetic, two's-
//     complement negation, NaR, and the quire accumulator — a drop-in
//     replacement for the SoftPosit C library the paper used;
//   - bit-level IEEE-754 tooling (binary16/bfloat16/binary32/binary64)
//     with the Elliott et al. closed-form flip error model;
//   - deterministic synthetic stand-ins for the paper's SDRBench
//     datasets (CESM, EXAFEL, HACC, Hurricane Isabel, Nyx — Table 1);
//   - QCAT-equivalent error metrics;
//   - the fault-injection campaign engine itself (deterministic,
//     worker-pool parallel), its aggregation and regime-bucketing
//     analysis, and text renderings of every figure in the paper.
//
// This file re-exports the library's primary API; the implementation
// lives under internal/ (one package per subsystem, see DESIGN.md).
package positres

import (
	"context"

	"positres/internal/analysis"
	"positres/internal/core"
	"positres/internal/figures"
	"positres/internal/ieee754"
	"positres/internal/numfmt"
	"positres/internal/posit"
	"positres/internal/runner"
	"positres/internal/sdrbench"
	"positres/internal/serve"
	"positres/internal/spec"
	"positres/internal/stats"
	"positres/internal/store"
	"positres/internal/telemetry"
	"positres/internal/textplot"
)

// Posit types and constructors (the SoftPosit-replacement substrate).
type (
	// Posit8 is an 8-bit standard posit (es = 2).
	Posit8 = posit.Posit8
	// Posit16 is a 16-bit standard posit (es = 2).
	Posit16 = posit.Posit16
	// Posit32 is a 32-bit standard posit (es = 2), the paper's format.
	Posit32 = posit.Posit32
	// Posit64 is a 64-bit standard posit (es = 2).
	Posit64 = posit.Posit64
	// PositConfig describes an arbitrary posit format (width, es).
	PositConfig = posit.Config
	// PositFields is a posit's field decomposition (sign, regime,
	// exponent, fraction).
	PositFields = posit.Fields
	// Quire is the exact fixed-point accumulator of the posit standard.
	Quire = posit.Quire
)

// Standard posit configurations (es = 2).
var (
	Std8  = posit.Std8
	Std16 = posit.Std16
	Std32 = posit.Std32
	Std64 = posit.Std64
)

// Posit constructors and helpers.
var (
	P8FromFloat64  = posit.P8FromFloat64
	P16FromFloat64 = posit.P16FromFloat64
	P32FromFloat64 = posit.P32FromFloat64
	P64FromFloat64 = posit.P64FromFloat64
	P8FromBits     = posit.P8FromBits
	P16FromBits    = posit.P16FromBits
	P32FromBits    = posit.P32FromBits
	P64FromBits    = posit.P64FromBits
	P32FromInt64   = posit.P32FromInt64
	P64FromInt64   = posit.P64FromInt64
	// NewQuire returns an exact accumulator for a posit configuration.
	NewQuire = posit.NewQuire
	// DotP32 / SumP32 / GemmP32 / MatVecP32 / Norm2P32 compute
	// quire-exact reductions (single rounding per result, order
	// independent).
	DotP32    = posit.DotP32
	SumP32    = posit.SumP32
	GemmP32   = posit.GemmP32
	MatVecP32 = posit.MatVecP32
	Norm2P32  = posit.Norm2P32
	// PositBitString renders a pattern with field separators
	// ("0|110|11|…"), the notation of the paper's worked examples.
	PositBitString = posit.BitString
	// DecodePositFields decomposes a raw pattern.
	DecodePositFields = posit.DecodeFields
)

// IEEE-754 formats.
type IEEEFormat = ieee754.Format

var (
	Binary16 = ieee754.Binary16
	BFloat16 = ieee754.BFloat16
	Binary32 = ieee754.Binary32
	Binary64 = ieee754.Binary64
)

// Codec is the number-format abstraction campaigns run over.
type Codec = numfmt.Codec

var (
	// LookupFormat finds a codec by name ("posit32", "ieee32", …).
	LookupFormat = numfmt.Lookup
	// FormatNames lists all registered codecs.
	FormatNames = numfmt.Names
)

// Campaign engine (the paper's contribution).
type (
	// CampaignConfig parameterizes a fault-injection campaign.
	CampaignConfig = core.Config
	// Trial is one recorded fault injection.
	Trial = core.Trial
	// CampaignResult is a completed (field, codec) campaign.
	CampaignResult = core.Result
	// BitAgg is a per-bit aggregate (a point on the error curves).
	BitAgg = core.BitAgg
)

var (
	// DefaultCampaignConfig mirrors the paper's parameters
	// (313 trials per bit).
	DefaultCampaignConfig = core.DefaultConfig
	// AggregateByBit reduces trials to per-bit error curves.
	AggregateByBit = core.AggregateByBit
	// WriteTrialsCSV / ReadTrialsCSV persist trial logs.
	WriteTrialsCSV = core.WriteTrialsCSV
	ReadTrialsCSV  = core.ReadTrialsCSV
)

// RunCampaign executes a campaign for one codec over one field's
// data.
func RunCampaign(cfg CampaignConfig, codec Codec, fieldKey string, data []float64) (*CampaignResult, error) {
	return core.Run(context.Background(), cfg, codec, fieldKey, data)
}

// RunCampaignContext is RunCampaign with cancellation: the worker pool
// drains at bit granularity when ctx is cancelled and the context's
// error is returned instead of a partial result.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig, codec Codec, fieldKey string, data []float64) (*CampaignResult, error) {
	return core.Run(ctx, cfg, codec, fieldKey, data)
}

// Datasets (synthetic SDRBench stand-ins).
type DatasetField = sdrbench.Field

var (
	// DatasetFields lists the paper's 16 evaluation fields (Table 1).
	DatasetFields = sdrbench.Fields
	// LookupField finds a field by "Dataset/Name".
	LookupField = sdrbench.Lookup
	// WidenFloat32 converts generated float32 data for the campaign.
	WidenFloat32 = sdrbench.ToFloat64
)

// Statistics.
type Summary = stats.Summary

// Summarize computes mean/median/min/max/std of a data array.
var Summarize = stats.Summarize

// Flip analysis (the injection-free prediction model).
type (
	// PositFlip is the analytical outcome of a posit bit flip.
	PositFlip = analysis.PositFlip
	// IEEEFlip is the analytical outcome of an IEEE bit flip.
	IEEEFlip = analysis.IEEEFlip
)

var (
	AnalyzePositFlip = analysis.AnalyzePositFlip
	SweepPositFlips  = analysis.SweepPositFlips
	AnalyzeIEEEFlip  = analysis.AnalyzeIEEEFlip
	SweepIEEEFlips   = analysis.SweepIEEEFlips
)

// Figures: regenerate the paper's tables and plots.
type (
	// Budget scales an experiment (dataset size, trials per bit).
	Budget = figures.Budget
	// LineChart / BoxPlot / TextTable are text renderings.
	LineChart = textplot.LineChart
	BoxPlot   = textplot.BoxPlot
	TextTable = textplot.Table
)

var (
	// PaperBudget uses the paper's 313 trials per bit.
	PaperBudget = figures.PaperBudget
	// QuickBudget runs every figure in well under a second.
	QuickBudget = figures.QuickBudget

	Table1 = figures.Table1
	Fig3   = figures.Fig3
	Fig7   = figures.Fig7
	Fig10  = figures.Fig10
	Fig11  = figures.Fig11
	Fig14  = figures.Fig14
	Fig16  = figures.Fig16
	Fig18  = figures.Fig18
	Fig20  = figures.Fig20

	// Extension experiments: mid-solve fault impact, SEC-DED
	// protection, Poisson soft-error rates, and the neural-network
	// weight-flip study of the paper's ref [8].
	SolverImpactTable = figures.SolverImpactTable
	ProtectionTable   = figures.ProtectionTable
	SoftErrorTable    = figures.SoftErrorTable
	MLFlipChart       = figures.MLFlipChart
	MLImpactTable     = figures.MLImpactTable
)

// Durable campaigns and the positserve service: the job-level surface
// of the engine. One canonical CampaignSpec describes a campaign
// everywhere — the positcampaign CLI, runner.Run, the positserve HTTP
// API and its Go client all consume the same struct with the same
// Validate() and the same stable error codes.
type (
	// CampaignSpec is the canonical campaign description (fields ×
	// formats plus sampling parameters). Its JSON form is the positserve
	// wire format.
	CampaignSpec = spec.CampaignSpec
	// SpecError is a validation failure with a stable machine-readable
	// code, shared between the CLI and the HTTP API.
	SpecError = spec.Error
	// RunnerConfig parameterizes a durable, resumable campaign run.
	RunnerConfig = runner.Config
	// RunnerReport is the outcome of a durable campaign run.
	RunnerReport = runner.Report
	// ServeClient is the typed HTTP client of a positserve instance.
	ServeClient = serve.Client
	// ServeAPIError is a positserve error envelope surfaced client-side.
	ServeAPIError = serve.APIError
	// ServeCampaignStatus is a campaign's job status document.
	ServeCampaignStatus = serve.CampaignStatus
	// TelemetrySnapshot is the positres-telemetry/v1 metrics document.
	TelemetrySnapshot = telemetry.Snapshot
)

var (
	// RunDurable executes a CampaignSpec durably under a state
	// directory: journaled shards, crash-safe resume, bounded retries
	// (and, under positserve coordinator mode, distributed fan-out).
	RunDurable = runner.Run
	// ExpandSpecs expands a CampaignSpec into its (field, codec) matrix.
	ExpandSpecs = runner.SpecsOf
	// NewServeClient dials a positserve instance (coordinator or
	// worker).
	NewServeClient = serve.NewClient
)

// The columnar trial store and its aggregate documents: the durable,
// bounded-memory representation of campaign results (docs/STORE.md).
// A store renders its rows as CSV byte-identical to WriteTrialsCSV
// and carries O(fields×bits) online aggregates in its footer, which
// is also what the results API serves as positres-aggregate/v1 JSON.
type (
	// TrialStoreWriter appends trial shards to one .pts column store,
	// folding every row into the footer aggregates as it goes.
	TrialStoreWriter = store.Writer
	// TrialStoreReader reads a sealed .pts store: rows (as CSV),
	// blocks, and the footer aggregates — without loading trials.
	TrialStoreReader = store.Reader
	// CampaignStoreWriter manages one TrialStoreWriter per
	// (field, format) pair of a campaign; it is the runner.Config.Sink
	// the service and CLI plug in.
	CampaignStoreWriter = store.CampaignWriter
	// AggregateDoc is the positres-aggregate/v1 summary document
	// served by GET /v1/campaigns/{id}/results under
	// Accept: application/json.
	AggregateDoc = store.AggregateDoc
	// AggregateBitSummary is one bit position's entry in an
	// AggregateDoc.
	AggregateBitSummary = store.BitSummary
)

var (
	// OpenTrialStore opens a sealed .pts store for reading.
	OpenTrialStore = store.Open
	// NewTrialStoreWriter creates a .pts store for one (field, codec).
	NewTrialStoreWriter = store.NewWriter
	// NewCampaignStoreWriter creates a per-campaign store directory
	// writer, suitable as a RunnerConfig.Sink.
	NewCampaignStoreWriter = store.NewCampaignWriter
	// TrialStoreFileName is the canonical .pts file name for a
	// (field, format) pair.
	TrialStoreFileName = store.FileName
	// ReadAggregateDoc parses and schema-checks a
	// positres-aggregate/v1 JSON document.
	ReadAggregateDoc = store.ReadDoc
)
