module positres

go 1.22
