# positres — build/test/reproduce targets.

GO ?= go

.PHONY: all build test test-short vet bench report report-paper fuzz examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the heaviest exhaustive substrate checks.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure (quick budget).
report:
	$(GO) run ./cmd/positreport -fig all

# Full scale: the paper's 313 trials per bit over 2M-element fields.
report-paper:
	$(GO) run ./cmd/positreport -fig all -budget paper

# Brief fuzz pass over the posit substrate invariants.
fuzz:
	$(GO) test -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzDecodersAgree -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzAddAgainstRat -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzQuireFMA -fuzztime 30s ./internal/posit/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/regime_expansion
	$(GO) run ./examples/sign_flip
	$(GO) run ./examples/accuracy_profile
	$(GO) run ./examples/campaign_mini
	$(GO) run ./examples/solver_fault
	$(GO) run ./examples/ml_inference

clean:
	$(GO) clean -testcache
