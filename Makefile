# positres — build/test/reproduce targets.

GO ?= go

.PHONY: all build test test-short vet lint lint-fix lint-json lint-prune race ci resume-e2e serve-e2e cluster-e2e chaos-e2e load load-smoke serve bench bench-json bench-compare bench-go store-smoke report report-paper fuzz fuzz-short examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the heaviest exhaustive substrate checks.
test-short:
	$(GO) test -short ./...

# Domain-aware static analysis (see docs/LINT.md). Non-zero exit on
# any unsuppressed diagnostic, so this gates CI. The content-hash
# cache lives under /tmp so repeat runs only re-analyze what changed.
lint:
	$(GO) run ./cmd/positlint -cache "$${TMPDIR:-/tmp}/positlint-cache" ./...

# Apply the mechanical autofixes (errdrop, pkgdoc, exportdoc stubs)
# in place, then report whatever judgement rules still flag.
lint-fix:
	$(GO) run ./cmd/positlint -fix ./...

# Machine-readable diagnostics (positlint-diag/v1), the same document
# CI archives as artifacts/positlint.json.
lint-json:
	$(GO) run ./cmd/positlint -format json ./...

# Report suppression-file entries and inline ignore directives that no
# longer match any diagnostic; `make ci` fails on these.
lint-prune:
	$(GO) run ./cmd/positlint -prune ./...

# Race-detector pass over the short test path (the campaign worker
# pools run at 1/2/8 workers under these tests).
race:
	$(GO) test -race -short ./...

# Full local CI pipeline: fmt, vet, build, lint, tests, race, resume e2e.
ci:
	./scripts/ci.sh

# Kill-and-resume end-to-end: crash and SIGINT a real campaign, resume
# both, require byte-identical CSVs (docs/RESILIENCE.md).
resume-e2e:
	./scripts/resume_e2e.sh

# HTTP twin of resume-e2e: run a campaign through positserve, crash
# the server mid-run, restart it, require auto-resume and
# byte-identical CSVs (docs/SERVICE.md).
serve-e2e:
	./scripts/serve_e2e.sh

# Distributed fan-out e2e: 1 coordinator + 3 workers, SIGKILL one
# worker mid-campaign, require reassignment and CSVs byte-identical to
# a single-node run (docs/SERVICE.md "Coordinator / worker mode").
cluster-e2e:
	./scripts/cluster_e2e.sh

# Chaos soak e2e: positload drives a coordinator + 2 workers with
# chaos proxies on every hop, SIGKILLs and re-registers a worker
# mid-soak, and requires the error budget to hold with CSVs
# byte-identical to a serial baseline (docs/RESILIENCE.md "Chaos & load").
chaos-e2e:
	./scripts/load_e2e.sh

# Self-contained 30s soak: in-process positserve behind an in-process
# chaos proxy, moderate fault mix, artifact under artifacts/.
load:
	mkdir -p artifacts
	$(GO) run ./cmd/positload -smoke -duration 30s -qps 100 -inject-workers 8 \
		-chaos-latency-p 0.10 -chaos-5xx-p 0.05 -chaos-reset-p 0.02 \
		-out artifacts/load.json

# The quick CI variant of `load`: a few seconds, same fault mix.
load-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/positload -smoke -duration 3s -qps 40 -inject-workers 4 \
		-chaos-latency-p 0.10 -chaos-5xx-p 0.05 -chaos-reset-p 0.02 \
		-out artifacts/load.json

# Run the campaign service locally (docs/SERVICE.md has the API).
serve:
	$(GO) run ./cmd/positserve -data-dir serve-state

# Fixed-budget benchmark suite (docs/PERF.md). `bench` prints the
# table; `bench-json` also writes the schema-versioned trajectory file
# committed as the PR's perf baseline.
bench:
	$(GO) run ./cmd/positbench

bench-json:
	$(GO) run ./cmd/positbench -out BENCH_PR10.json

# Informational perf trajectory: rerun the suite and print it next to
# the previous PR's committed baseline (never fails on numbers).
bench-compare:
	$(GO) run ./cmd/positbench -compare BENCH_PR9.json

# Bounded-memory columnar-store equivalence check (docs/STORE.md): a
# 10⁷-trial campaign streamed shard-by-shard into a .pts store under a
# small GOMEMLIMIT, its rendered CSV SHA-256-compared against the
# direct encoder and its footer aggregates schema-validated.
store-smoke:
	GOMEMLIMIT=256MiB $(GO) run ./cmd/positstore smoke \
		-format posit16 -n 1000000 -trials 625000 -bits-per-shard 1

# Raw `go test` benchmarks (the figure-regeneration harness in
# bench_test.go), for ad-hoc -bench=regexp runs.
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure (quick budget).
report:
	$(GO) run ./cmd/positreport -fig all

# Full scale: the paper's 313 trials per bit over 2M-element fields.
report-paper:
	$(GO) run ./cmd/positreport -fig all -budget paper

# Brief fuzz pass over the posit substrate invariants and the binary
# trial wire decoder (docs/WIRE.md).
fuzz:
	$(GO) test -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzDecodersAgree -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzAddAgainstRat -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzQuireFMA -fuzztime 30s ./internal/posit/
	$(GO) test -fuzz FuzzDecodeFrame -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzFooterIndex -fuzztime 30s ./internal/store/
	$(GO) test -fuzz FuzzOpen -fuzztime 30s ./internal/store/

# Smoke-test the fuzzers (5s each) — quick enough for every PR.
# -run '^$' skips the package's (heavy, exhaustive) unit tests so each
# invocation is the 5s fuzz pass and nothing else.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 5s ./internal/posit/
	$(GO) test -run '^$$' -fuzz FuzzDecodersAgree -fuzztime 5s ./internal/posit/
	$(GO) test -run '^$$' -fuzz FuzzAddAgainstRat -fuzztime 5s ./internal/posit/
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 5s ./internal/posit/
	$(GO) test -run '^$$' -fuzz FuzzQuireFMA -fuzztime 5s ./internal/posit/
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzFooterIndex -fuzztime 5s ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzOpen -fuzztime 5s ./internal/store/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/regime_expansion
	$(GO) run ./examples/sign_flip
	$(GO) run ./examples/accuracy_profile
	$(GO) run ./examples/campaign_mini
	$(GO) run ./examples/solver_fault
	$(GO) run ./examples/ml_inference

clean:
	$(GO) clean -testcache
