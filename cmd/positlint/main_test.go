package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positres/internal/lint"
)

// runCLI invokes run() with stdout/stderr captured in temp files.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	_ = outF.Close()
	_ = errF.Close()
	outB, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errB, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(outB), string(errB)
}

const allFixture = "../../internal/lint/testdata/src/all"

func TestListIncludesNewRules(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, id := range []string{"quireguard", "csvheader", "budgetscale", "errcode"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing rule %s", id)
		}
	}
}

func TestFixtureTripsNonZero(t *testing.T) {
	code, out, _ := runCLI(t, allFixture)
	if code != 1 {
		t.Fatalf("lint of all fixture exit = %d, want 1", code)
	}
	for _, id := range []string{"quireguard", "csvheader", "budgetscale", "errcode"} {
		if !strings.Contains(out, "["+id+"]") {
			t.Errorf("all fixture output missing a %s diagnostic", id)
		}
	}
}

// TestNoMatchingPackages pins the contract that a pattern resolving to
// no Go packages is a usage error (exit 2 with a clear message), never
// a silent green run.
func TestNoMatchingPackages(t *testing.T) {
	code, _, stderr := runCLI(t, "../../docs")
	if code != 2 {
		t.Fatalf("no-package pattern exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "matched no packages") && !strings.Contains(stderr, "no Go packages") {
		t.Errorf("stderr lacks a clear no-match message: %s", stderr)
	}
	if code, _, _ := runCLI(t, "./does-not-exist"); code != 2 {
		t.Errorf("nonexistent pattern exit = %d, want 2", code)
	}
	empty := t.TempDir()
	if code, _, stderr := runCLI(t, empty); code != 2 {
		t.Errorf("empty-dir pattern exit = %d, want 2 (stderr: %s)", code, stderr)
	}
}

func TestBadFormatRejected(t *testing.T) {
	if code, _, _ := runCLI(t, "-format", "yaml", allFixture); code != 2 {
		t.Errorf("-format yaml exit = %d, want 2", code)
	}
}

func TestJSONFormat(t *testing.T) {
	code, out, _ := runCLI(t, "-format", "json", allFixture)
	if code != 1 {
		t.Fatalf("json lint exit = %d, want 1", code)
	}
	rep, err := lint.ReadJSON(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output is not a valid report: %v", err)
	}
	if rep.Count == 0 || rep.Count != len(rep.Issues) {
		t.Errorf("report count = %d with %d issues", rep.Count, len(rep.Issues))
	}
}

// TestFixMakesFixtureClean copies the all fixture and verifies the
// ISSUE acceptance criterion: after `positlint -fix` with the
// mechanical rules, the copy lints clean.
func TestFixMakesFixtureClean(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(allFixture, "all.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "all.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	rules := "-rules=errdrop,pkgdoc,exportdoc"
	if code, _, stderr := runCLI(t, rules, "-fix", dir); code != 0 {
		t.Fatalf("-fix exit = %d (stderr: %s)", code, stderr)
	}
	if code, out, _ := runCLI(t, rules, dir); code != 0 {
		t.Fatalf("relint after -fix exit = %d:\n%s", code, out)
	}
}

func TestPruneReportsStaleSuppression(t *testing.T) {
	supFile := filepath.Join(t.TempDir(), "sup")
	if err := os.WriteFile(supFile, []byte("floatcmp gone/renamed.go -- stale leftover\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-prune", "-suppress", supFile, allFixture)
	if code != 1 {
		t.Fatalf("-prune with stale entry exit = %d, want 1", code)
	}
	if !strings.Contains(out, "stale suppress") {
		t.Errorf("prune output missing stale report: %s", out)
	}
}
