// Command positlint runs the repository's domain-aware static
// analysis (internal/lint) and reports diagnostics as
// "file:line:col: [rule] message" lines.
//
// Usage:
//
//	positlint [flags] [patterns...]
//
// Patterns follow the go tool shape: "./..." (default) lints every
// package in the module, "./internal/posit/..." a subtree,
// "./internal/posit" one package. A pattern naming a directory
// outside the module package graph (for example a testdata fixture
// directory) is loaded as a standalone package.
//
// Exit status: 0 when clean, 1 when any diagnostic survives
// suppression (with -fix: survives fixing; with -prune: any stale
// suppression), 2 on load/type-check errors, patterns matching no Go
// packages, or bad usage.
//
// Flags beyond rule selection:
//
//	-fix          apply the suggested fixes of mechanical rules
//	              (errdrop, pkgdoc, exportdoc) in place, then report
//	              what remains
//	-format json  emit the diagnostics as a positlint-diag/v1 JSON
//	              report instead of text lines (CI archives this)
//	-prune        report suppression-file entries and inline ignore
//	              directives that no longer match any diagnostic
//	-cache DIR    reuse per-package results keyed by content hash
//	-jobs N       analyze N packages concurrently (default GOMAXPROCS)
//
// Suppressions: see docs/LINT.md. File-based entries live in
// .positlint.suppress at the module root; inline escapes use
// //positlint:ignore <rule> <reason> on or above the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"positres/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("positlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the rules and exit")
		rulesCSV = fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
		suppress = fs.String("suppress", "", "suppression file (default: <module root>/.positlint.suppress)")
		fix      = fs.Bool("fix", false, "apply suggested fixes in place, then report what remains")
		format   = fs.String("format", "text", "output format: text or json")
		prune    = fs.Bool("prune", false, "report stale suppressions and ignore directives instead of linting")
		cacheDir = fs.String("cache", "", "cache per-package results in this directory")
		jobs     = fs.Int("jobs", 0, "packages to analyze concurrently (default GOMAXPROCS)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: positlint [flags] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "positlint: -format must be text or json, got %q\n", *format)
		return 2
	}

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.ID(), r.Doc())
		}
		return 0
	}

	rules := lint.AllRules()
	if *rulesCSV != "" {
		rules = nil
		for _, id := range strings.Split(*rulesCSV, ",") {
			r, ok := lint.RuleByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "positlint: unknown rule %q (see -list)\n", id)
				return 2
			}
			rules = append(rules, r)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "positlint: %v\n", err)
		return 2
	}

	var pkgs []*lint.Package
	var sup *lint.Suppressions
	for _, pat := range patterns {
		loaded, s, err := load(cwd, pat, *suppress)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		if s != nil {
			sup = s
		}
		pkgs = append(pkgs, loaded...)
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "positlint: no Go packages matched %s\n", strings.Join(patterns, " "))
		return 2
	}

	if *prune {
		stale := lint.FindStale(pkgs, rules, sup)
		for _, s := range stale {
			fmt.Fprintln(stdout, s)
		}
		if len(stale) > 0 {
			fmt.Fprintf(stderr, "positlint: %d stale suppression(s); delete them\n", len(stale))
			return 1
		}
		return 0
	}

	runner := &lint.Runner{Rules: rules, Suppress: sup, Jobs: *jobs}
	if *cacheDir != "" {
		runner.Cache = lint.NewCache(*cacheDir)
	}
	diags := runner.Run(pkgs)

	if *fix {
		changed, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		if n := lint.Fixable(diags); n > 0 {
			fmt.Fprintf(stderr, "positlint: fixed %d issue(s) in %d file(s)\n", n, len(changed))
		}
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if d.Fix == nil {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	if *format == "json" {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "positlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// load resolves one pattern to lint packages, plus the module's
// suppression set when the pattern lies inside a module.
func load(cwd, pattern, suppressFlag string) ([]*lint.Package, *lint.Suppressions, error) {
	recursive := false
	dir := pattern
	if strings.HasSuffix(pattern, "/...") {
		recursive = true
		dir = strings.TrimSuffix(pattern, "/...")
	}
	if dir == "" || dir == "." {
		dir = cwd
	}
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}

	// An explicitly named suppression file applies to every load mode;
	// the module-root default only to module loads. Unlike the default,
	// an explicit file must exist.
	explicitSup := func() (*lint.Suppressions, error) {
		if suppressFlag == "" {
			return nil, nil
		}
		if _, err := os.Stat(suppressFlag); err != nil {
			return nil, err
		}
		return lint.LoadSuppressions(suppressFlag)
	}

	root, rootErr := lint.FindModuleRoot(abs)
	if rootErr != nil {
		// Outside any module: standalone directory load.
		pkg, err := lint.LoadDir(abs)
		if err != nil {
			return nil, nil, err
		}
		sup, err := explicitSup()
		if err != nil {
			return nil, nil, err
		}
		return []*lint.Package{pkg}, sup, nil
	}

	// Inside a module but under a testdata (or otherwise unwalked)
	// directory: load standalone, since the module loader skips it.
	if underSkipped(root, abs) {
		pkg, err := lint.LoadDir(abs)
		if err != nil {
			return nil, nil, err
		}
		sup, err := explicitSup()
		if err != nil {
			return nil, nil, err
		}
		return []*lint.Package{pkg}, sup, nil
	}

	mod, err := lint.LoadModule(root)
	if err != nil {
		return nil, nil, err
	}
	sup, err := explicitSup()
	if err != nil {
		return nil, nil, err
	}
	if sup == nil {
		if sup, err = lint.LoadSuppressions(filepath.Join(root, ".positlint.suppress")); err != nil {
			return nil, nil, err
		}
	}

	var out []*lint.Package
	for _, pkg := range mod.Pkgs {
		switch {
		case recursive && (pkg.Dir == abs || strings.HasPrefix(pkg.Dir+string(filepath.Separator), abs+string(filepath.Separator))):
			out = append(out, pkg)
		case !recursive && pkg.Dir == abs:
			out = append(out, pkg)
		}
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("pattern %s matched no packages", pattern)
	}
	return out, sup, nil
}

// underSkipped reports whether abs sits below a directory the module
// walker skips (testdata, vendor, hidden, underscore).
func underSkipped(root, abs string) bool {
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == "." {
		return false
	}
	for _, part := range strings.Split(filepath.ToSlash(rel), "/") {
		if part == "testdata" || part == "vendor" ||
			strings.HasPrefix(part, ".") || strings.HasPrefix(part, "_") {
			return true
		}
	}
	return false
}
