// Command positstore inspects and exercises columnar .pts trial
// stores (docs/STORE.md).
//
// Usage:
//
//	positstore cat FILE.pts              # stream the rows as CSV
//	positstore agg FILE.pts              # print the positres-aggregate/v1 JSON
//	positstore verify FILE.pts ...       # full-file CRC verification
//	positstore smoke [flags]             # bounded-memory equivalence check
//
// smoke is the CI driver for the store's two core guarantees: a
// campaign streamed shard by shard into a store renders CSV
// byte-identical (SHA-256-compared) to the direct core.WriteTrialsCSV
// path, and the footer aggregates form a valid aggregate document —
// all without ever holding more than one shard of trials in memory,
// so it runs a 10⁷-trial campaign under a small GOMEMLIMIT.
//
// Exit codes: 0 ok; 1 failure; 2 usage.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
	"positres/internal/store"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "cat":
		err = catCmd(args[1:])
	case "agg":
		err = aggCmd(args[1:])
	case "verify":
		err = verifyCmd(args[1:])
	case "smoke":
		err = smokeCmd(args[1:])
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "positstore:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: positstore <cat|agg|verify|smoke> ...
  cat FILE.pts            stream the trial rows as CSV on stdout
  agg FILE.pts            print the aggregate summary document as JSON
  verify FILE.pts ...     verify every CRC in each file
  smoke [flags]           bounded-memory store-vs-direct equivalence check`)
}

// withReader opens one store argument and hands it to fn, closing on
// every path.
func withReader(args []string, fn func(*store.Reader) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one FILE.pts argument")
	}
	rd, err := store.Open(args[0])
	if err != nil {
		return err
	}
	if err := fn(rd); err != nil {
		_ = rd.Close()
		return err
	}
	return rd.Close()
}

// catCmd renders the store's rows as CSV on stdout — byte-identical
// to what core.WriteTrialsCSV would emit for the same trials.
func catCmd(args []string) error {
	return withReader(args, func(rd *store.Reader) error {
		return rd.RenderCSV(os.Stdout)
	})
}

// aggCmd prints the store's aggregate document as indented JSON.
func aggCmd(args []string) error {
	return withReader(args, func(rd *store.Reader) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rd.Doc())
	})
}

// verifyCmd runs the full CRC walk over each file, reporting per-file.
func verifyCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("expected FILE.pts arguments")
	}
	for _, path := range args {
		rd, err := store.Open(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		verr := rd.Verify()
		rows, blocks := rd.Rows(), rd.Blocks()
		if cerr := rd.Close(); cerr != nil && verr == nil {
			verr = cerr
		}
		if verr != nil {
			return fmt.Errorf("%s: %w", path, verr)
		}
		fmt.Printf("%s: ok (%d rows, %d blocks)\n", path, rows, blocks)
	}
	return nil
}

// smokeCmd streams one (field, format) campaign into a store shard by
// shard while hashing the direct CSV encoding of the same trials, then
// compares the store's rendered CSV against it and validates the
// aggregate document. Peak trial residency is one shard, so the whole
// check runs in bounded memory regardless of -trials.
func smokeCmd(args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	var (
		field        = fs.String("field", "CESM/CLOUD", "sdrbench field key")
		format       = fs.String("format", "posit16", "number format")
		n            = fs.Int("n", 100_000, "synthetic elements")
		trials       = fs.Int("trials", 1000, "trials per bit position")
		bitsPerShard = fs.Int("bits-per-shard", 1, "bit positions per appended shard")
		seed         = fs.Uint64("seed", 1, "campaign seed")
		dir          = fs.String("dir", "", "working directory (default: a temp dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := numfmt.Lookup(*format)
	if err != nil {
		return err
	}
	f, err := sdrbench.Lookup(*field)
	if err != nil {
		return err
	}
	data := sdrbench.ToFloat64(f.Generate(*n, *seed))

	workDir := *dir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "positstore-smoke-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(workDir)
	}
	path := filepath.Join(workDir, store.FileName(*field, *format))

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.TrialsPerBit = *trials
	cfg.Workers = 1 // serial: the deterministic zero-alloc campaign loop

	w, err := store.NewWriter(path, *field, *format)
	if err != nil {
		return err
	}
	defer w.Abort()

	directHash := sha256.New()
	rowBuf := core.AppendTrialHeader(nil)
	if _, err := directHash.Write(rowBuf); err != nil {
		return err
	}
	var shard []core.Trial
	width := codec.Width()
	totalRows := uint64(0)
	start := time.Now()
	for lo := 0; lo < width; lo += *bitsPerShard {
		hi := lo + *bitsPerShard
		if hi > width {
			hi = width
		}
		shard, err = core.RunRangeInto(context.Background(), cfg, codec, *field, data, lo, hi, shard[:0])
		if err != nil {
			return err
		}
		if err := w.AppendShard(lo, hi, shard); err != nil {
			return err
		}
		for i := range shard {
			rowBuf = core.AppendTrialRow(rowBuf[:0], &shard[i])
			if _, err := directHash.Write(rowBuf); err != nil {
				return err
			}
		}
		totalRows += uint64(len(shard))
	}
	if err := w.Seal(); err != nil {
		return err
	}

	rd, err := store.Open(path)
	if err != nil {
		return err
	}
	defer rd.Close()
	storeHash := sha256.New()
	if err := rd.RenderCSV(storeHash); err != nil {
		return err
	}
	want, got := directHash.Sum(nil), storeHash.Sum(nil)
	if string(want) != string(got) {
		return fmt.Errorf("store CSV diverges from the direct path: sha256 %x, want %x", got, want)
	}

	// The aggregate document must survive its own serialization and
	// describe exactly the campaign that ran.
	doc := rd.Doc()
	raw, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	reread, err := store.ReadDoc(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("aggregate document round-trip: %w", err)
	}
	if reread.Trials != totalRows || !reread.Sealed || len(reread.Bits) != width {
		return fmt.Errorf("aggregate document mismatch: %d trials over %d bits (sealed=%v), want %d over %d",
			reread.Trials, len(reread.Bits), reread.Sealed, totalRows, width)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("smoke ok: %d trials, %d bits, store %d bytes, csv sha256 %x, heap sys %d MiB, %v\n",
		totalRows, width, st.Size(), got, ms.HeapSys/(1<<20), time.Since(start).Round(time.Millisecond))
	return nil
}
