// Command chaosproxy is the standalone wrapper around internal/chaos:
// a fault-injecting reverse proxy that sits in front of a positserve
// instance (or between a coordinator and one worker) and injects
// latency, TCP resets, truncated or corrupted response bodies, and
// synthetic 5xx bursts on a deterministic seeded schedule
// (-chaos-seed), so a failing run replays exactly.
//
// Usage:
//
//	chaosproxy -listen 127.0.0.1:0 -target http://127.0.0.1:8080 \
//	    -chaos-seed 7 -chaos-5xx-p 0.05 -chaos-truncate-p 0.02
//
// The first stdout line is always "chaosproxy: listening on
// http://HOST:PORT", so scripts can bind -listen 127.0.0.1:0 and
// scrape the chosen port (the same contract as positserve).
//
// On SIGINT/SIGTERM the proxy stops and prints its fault tallies
// (chaos.StatsSnapshot JSON) to stderr, then exits 0.
//
// Exit codes: 0 clean shutdown; 1 fatal error; 2 usage.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"positres/internal/chaos"
)

// Exit codes of the proxy process.
const (
	exitOK    = 0
	exitFatal = 1
	exitUsage = 2
)

func main() { os.Exit(run()) }

func run() int {
	fs := flag.NewFlagSet("chaosproxy", flag.ContinueOnError)
	var (
		listen = fs.String("listen", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
		target = fs.String("target", "", "upstream base URL to forward to (required)")
		quiet  = fs.Bool("quiet", false, "suppress per-fault schedule lines on stderr")
		faults chaos.Faults
	)
	faults.Register(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	if *target == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -target is required")
		fs.Usage()
		return exitUsage
	}

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	proxy, err := chaos.New(*target, faults, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		return exitFatal
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		return exitFatal
	}
	// First line of output, parsed by scripts/load_e2e.sh to learn the
	// port when -listen ends in :0.
	fmt.Printf("chaosproxy: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Handler: proxy, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		<-ctx.Done()
		sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sdCtx); err != nil {
			fmt.Fprintln(os.Stderr, "chaosproxy: shutdown:", err)
		}
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		return exitFatal
	}

	// Final tallies so a soak run can account for every injected fault.
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if err := enc.Encode(proxy.Stats()); err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy: stats:", err)
	}
	fmt.Println("chaosproxy: drained, exiting")
	return exitOK
}
