package main

// The load engine: a QPS-paced inject fan-out plus submit-poll-fetch
// campaign loops, all over the hardened serve.Client, with latency
// folded into internal/telemetry's log₂ histograms and the error
// budget evaluated from the final tallies. Everything is driven by
// loadConfig so tests run the engine in-process against an httptest
// server.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	schemacheck "positres/internal/artifact"
	"positres/internal/atomicio"
	"positres/internal/chaos"
	"positres/internal/numfmt"
	"positres/internal/runner"
	"positres/internal/serve"
	"positres/internal/spec"
	"positres/internal/telemetry"
)

// artifactSchema tags the JSON artifact; bump only with a /v2.
const artifactSchema = "positres-load/v1"

// loadConfig parameterizes one load run.
type loadConfig struct {
	// Client is the (retry-configured) positserve client to load with.
	Client *serve.Client
	// Target is the base URL recorded in the artifact.
	Target string
	// Duration bounds the run (a cancelled context ends it earlier).
	Duration time.Duration
	// QPS is the aggregate target rate of /v1/inject requests.
	QPS float64
	// InjectWorkers is the number of concurrent inject requesters.
	InjectWorkers int
	// CampaignLoops is the number of concurrent campaign loops (0
	// disables campaign load).
	CampaignLoops int
	// Campaign is the spec each campaign loop submits repeatedly.
	Campaign spec.CampaignSpec
	// InjectFormats are the formats the inject load draws from.
	InjectFormats []string
	// Seed keys the per-worker PRNGs generating inject inputs.
	Seed uint64
	// MaxErrorRate is the error budget's failed-operation ceiling.
	MaxErrorRate float64
	// MaxP99 is the inject p99 ceiling (0 disables the check).
	MaxP99 time.Duration
	// CampaignOut, when set, receives each finished campaign's CSVs.
	CampaignOut string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// loadStats is the engine's shared tally state.
type loadStats struct {
	injectReqs atomic.Int64
	injectErrs atomic.Int64
	submits    atomic.Int64 // campaign submit attempts
	completed  atomic.Int64 // campaigns that reached "complete"
	failed     atomic.Int64 // submit errors + terminal non-complete states
	injectLat  telemetry.Histogram
	campLat    telemetry.Histogram
}

// artifact is the positres-load/v1 JSON document.
type artifact struct {
	// Schema is always "positres-load/v1".
	Schema string `json:"schema"`
	// Target is the base URL that was loaded.
	Target string `json:"target"`
	// StartedAt and FinishedAt bound the run, RFC 3339 UTC.
	StartedAt string `json:"started_at"`
	// FinishedAt is when the run ended.
	FinishedAt string `json:"finished_at"`
	// DurationNS is the measured wall-clock run length.
	DurationNS int64 `json:"duration_ns"`
	// TargetQPS is the configured inject rate.
	TargetQPS float64 `json:"target_qps"`
	// Inject reports the /v1/inject side of the load.
	Inject endpointReport `json:"inject"`
	// Campaigns reports the /v1/campaigns side of the load.
	Campaigns campaignReport `json:"campaigns"`
	// Budget is the error-budget verdict.
	Budget budgetReport `json:"budget"`
	// Chaos carries the embedded proxy's fault tallies in -smoke runs.
	Chaos *chaos.StatsSnapshot `json:"chaos,omitempty"`
}

// endpointReport summarizes the inject load.
type endpointReport struct {
	// Requests counts issued inject requests (after client retries).
	Requests int64 `json:"requests"`
	// Errors counts inject requests that failed despite retries.
	Errors int64 `json:"errors"`
	// AchievedQPS is Requests over the measured duration.
	AchievedQPS float64 `json:"achieved_qps"`
	// P50NS, P95NS and P99NS are latency quantile estimates
	// (log₂-band upper edges, clamped to observed min/max).
	P50NS int64 `json:"p50_ns"`
	// P95NS is the 95th-percentile estimate.
	P95NS int64 `json:"p95_ns"`
	// P99NS is the 99th-percentile estimate.
	P99NS int64 `json:"p99_ns"`
	// Latency is the full log₂ histogram snapshot.
	Latency telemetry.HistogramSnapshot `json:"latency"`
}

// campaignReport summarizes the campaign loops.
type campaignReport struct {
	// Submitted counts campaign submit attempts.
	Submitted int64 `json:"submitted"`
	// Completed counts campaigns that reached "complete".
	Completed int64 `json:"completed"`
	// Failed counts submit errors and terminal non-complete states.
	Failed int64 `json:"failed"`
	// P99NS is the submit-to-fetch round-trip p99 estimate.
	P99NS int64 `json:"p99_ns"`
	// Latency is the round-trip log₂ histogram snapshot.
	Latency telemetry.HistogramSnapshot `json:"latency"`
}

// budgetReport is the error-budget verdict of the run.
type budgetReport struct {
	// MaxErrorRate is the configured failed-operation ceiling.
	MaxErrorRate float64 `json:"max_error_rate"`
	// MaxP99NS is the configured inject p99 ceiling (0 = unchecked).
	MaxP99NS int64 `json:"max_p99_ns"`
	// ErrorRate is the measured failed-operation fraction.
	ErrorRate float64 `json:"error_rate"`
	// P99NS is the measured inject p99.
	P99NS int64 `json:"p99_ns"`
	// Violations lists every breached assertion; empty means the
	// budget held (exit 0).
	Violations []string `json:"violations,omitempty"`
}

// runLoad drives the configured load until ctx or Duration expires
// and returns the evaluated artifact.
func runLoad(ctx context.Context, cfg loadConfig) (*artifact, error) {
	if cfg.InjectWorkers <= 0 {
		cfg.InjectWorkers = 1
	}
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("positload: qps must be positive")
	}
	widths := map[string]int{}
	for i, name := range cfg.InjectFormats {
		name = strings.TrimSpace(name)
		cfg.InjectFormats[i] = name
		codec, err := numfmt.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("positload: inject format: %w", err)
		}
		widths[name] = codec.Width()
	}

	start := time.Now()
	var cancel context.CancelFunc
	ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var stats loadStats
	var wg sync.WaitGroup
	ticks := time.NewTicker(time.Duration(float64(time.Second) / cfg.QPS))
	defer ticks.Stop()
	for w := 0; w < cfg.InjectWorkers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			injectLoop(ctx, cfg, uint64(worker), widths, ticks.C, &stats)
		}(w)
	}
	for l := 0; l < cfg.CampaignLoops; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			campaignLoop(ctx, cfg, &stats)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	art := buildArtifact(cfg, &stats, start, elapsed)
	return art, nil
}

// injectLoop issues paced /v1/inject requests until ctx expires. All
// workers share one ticker channel, so the aggregate rate — not the
// per-worker rate — tracks QPS; a saturated fleet simply drops ticks,
// capping load instead of queueing an unbounded backlog.
func injectLoop(ctx context.Context, cfg loadConfig, worker uint64, widths map[string]int, ticks <-chan time.Time, stats *loadStats) {
	rng := rand.New(rand.NewPCG(cfg.Seed, worker))
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticks:
		}
		format := cfg.InjectFormats[rng.IntN(len(cfg.InjectFormats))]
		value := rng.NormFloat64() * 100
		bit := rng.IntN(widths[format])
		start := time.Now()
		_, err := cfg.Client.Inject(ctx, serve.InjectRequest{Format: format, Value: &value, Bit: &bit})
		stats.injectLat.Observe(time.Since(start))
		stats.injectReqs.Add(1)
		if err != nil && ctx.Err() == nil {
			stats.injectErrs.Add(1)
			if cfg.Logf != nil {
				cfg.Logf("inject error: %v", err)
			}
		}
	}
}

// submitAttempts bounds the harness-level campaign submit retry.
const submitAttempts = 5

// submitWithRetry retries campaign submission at the harness level.
// serve.Client refuses to retry a POST /v1/campaigns on 5xx or a
// transport error — a generic caller cannot know whether the job was
// created — but a load generator can: a duplicate campaign is just
// more load, which is the point.
func submitWithRetry(ctx context.Context, cfg loadConfig) (*serve.CampaignStatus, error) {
	var err error
	for attempt := 1; attempt <= submitAttempts; attempt++ {
		var st *serve.CampaignStatus
		st, err = cfg.Client.SubmitCampaign(ctx, &cfg.Campaign, false)
		if err == nil || ctx.Err() != nil {
			return st, err
		}
		select {
		case <-ctx.Done():
			return nil, err
		case <-time.After(runner.JitteredBackoff(50*time.Millisecond, attempt, "positload-submit")):
		}
	}
	return nil, err
}

// campaignLoop submits, polls and fetches campaigns back to back
// until ctx expires. A run cut off mid-campaign is abandoned without
// counting against the budget — the service did not fail, the clock
// ran out.
func campaignLoop(ctx context.Context, cfg loadConfig, stats *loadStats) {
	for ctx.Err() == nil {
		start := time.Now()
		stats.submits.Add(1)
		st, err := submitWithRetry(ctx, cfg)
		if err != nil {
			if ctx.Err() == nil {
				stats.failed.Add(1)
				if cfg.Logf != nil {
					cfg.Logf("campaign submit error: %v", err)
				}
			} else {
				stats.submits.Add(-1)
			}
			continue
		}
		final, ok := pollCampaign(ctx, cfg, st.ID)
		if !ok { // clock ran out mid-campaign
			stats.submits.Add(-1)
			return
		}
		if final.State != "complete" {
			stats.failed.Add(1)
			if cfg.Logf != nil {
				cfg.Logf("campaign %s finished %s: %s", final.ID, final.State, final.Error)
			}
			continue
		}
		if err := fetchResults(ctx, cfg, final); err != nil {
			if ctx.Err() == nil {
				stats.failed.Add(1)
				if cfg.Logf != nil {
					cfg.Logf("campaign %s fetch: %v", final.ID, err)
				}
			} else {
				stats.submits.Add(-1)
			}
			continue
		}
		stats.completed.Add(1)
		stats.campLat.Observe(time.Since(start))
	}
}

// pollCampaign waits for the campaign to reach a terminal state; ok
// is false when ctx expired first.
func pollCampaign(ctx context.Context, cfg loadConfig, id string) (*serve.CampaignStatus, bool) {
	t := time.NewTicker(150 * time.Millisecond)
	defer t.Stop()
	for {
		st, err := cfg.Client.CampaignStatus(ctx, id)
		if err == nil {
			switch st.State {
			case "queued", "running":
				// keep polling
			default:
				return st, true
			}
		} else if ctx.Err() != nil {
			return nil, false
		}
		select {
		case <-ctx.Done():
			return nil, false
		case <-t.C:
		}
	}
}

// fetchResults streams every published CSV — into CampaignOut when
// configured (atomically, under the standard field_format.csv names,
// for byte-comparison against a serial baseline), else to io.Discard
// so the response path is still exercised end to end.
func fetchResults(ctx context.Context, cfg loadConfig, st *serve.CampaignStatus) error {
	for _, ref := range st.Results {
		if cfg.CampaignOut == "" {
			if err := cfg.Client.CampaignResult(ctx, st.ID, ref.Field, ref.Format, io.Discard); err != nil {
				return err
			}
			continue
		}
		name := fmt.Sprintf("%s_%s.csv", strings.ReplaceAll(ref.Field, "/", "_"), ref.Format)
		err := atomicio.WriteFile(filepath.Join(cfg.CampaignOut, name), func(w io.Writer) error {
			return cfg.Client.CampaignResult(ctx, st.ID, ref.Field, ref.Format, w)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// buildArtifact folds the tallies into the schema-tagged document and
// evaluates the error budget.
func buildArtifact(cfg loadConfig, stats *loadStats, start time.Time, elapsed time.Duration) *artifact {
	injectSnap := stats.injectLat.Snapshot()
	campSnap := stats.campLat.Snapshot()
	art := &artifact{
		Schema:     artifactSchema,
		Target:     cfg.Target,
		StartedAt:  start.UTC().Format(time.RFC3339),
		FinishedAt: start.Add(elapsed).UTC().Format(time.RFC3339),
		DurationNS: int64(elapsed),
		TargetQPS:  cfg.QPS,
		Inject: endpointReport{
			Requests:    stats.injectReqs.Load(),
			Errors:      stats.injectErrs.Load(),
			AchievedQPS: float64(stats.injectReqs.Load()) / elapsed.Seconds(),
			P50NS:       injectSnap.Quantile(0.50),
			P95NS:       injectSnap.Quantile(0.95),
			P99NS:       injectSnap.Quantile(0.99),
			Latency:     injectSnap,
		},
		Campaigns: campaignReport{
			Submitted: stats.submits.Load(),
			Completed: stats.completed.Load(),
			Failed:    stats.failed.Load(),
			P99NS:     campSnap.Quantile(0.99),
			Latency:   campSnap,
		},
	}
	art.Budget = evalBudget(cfg, art)
	return art
}

// evalBudget applies the configured assertions to the measured run.
func evalBudget(cfg loadConfig, art *artifact) budgetReport {
	b := budgetReport{
		MaxErrorRate: cfg.MaxErrorRate,
		MaxP99NS:     int64(cfg.MaxP99),
		P99NS:        art.Inject.P99NS,
	}
	ops := art.Inject.Requests + art.Campaigns.Submitted
	errs := art.Inject.Errors + art.Campaigns.Failed
	if ops > 0 {
		b.ErrorRate = float64(errs) / float64(ops)
	}
	if ops == 0 {
		b.Violations = append(b.Violations, "no operations completed (target unreachable?)")
	}
	if b.ErrorRate > cfg.MaxErrorRate {
		b.Violations = append(b.Violations,
			fmt.Sprintf("error rate %.4f exceeds budget %.4f (%d/%d operations failed)",
				b.ErrorRate, cfg.MaxErrorRate, errs, ops))
	}
	if cfg.MaxP99 > 0 && art.Inject.P99NS > int64(cfg.MaxP99) {
		b.Violations = append(b.Violations,
			fmt.Sprintf("inject p99 %v exceeds ceiling %v",
				time.Duration(art.Inject.P99NS), cfg.MaxP99))
	}
	return b
}

// readArtifact parses a previously written positres-load/v1 document,
// refusing anything else via the shared schema check. It is the read
// half of the load-trajectory loop: `-baseline OLD.json` feeds the
// prior committed artifact (LOAD_PR10.json and successors) back
// through it for comparison.
func readArtifact(r io.Reader) (*artifact, error) {
	var a artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("positload: decode artifact: %w", err)
	}
	if err := schemacheck.CheckSchema(a.Schema, artifactSchema); err != nil {
		return nil, fmt.Errorf("positload: %w", err)
	}
	return &a, nil
}

// compareBaseline prints an informational trajectory diff against a
// prior artifact. Load numbers are environment-sensitive, so — like
// positbench -compare — this never turns a regression into an exit
// code; the budget flags stay the only automated gate (docs/PERF.md).
func (a *artifact) compareBaseline(w io.Writer, old *artifact) {
	fmt.Fprintf(w, "positload: baseline %s (%s, %v)\n", old.Target, old.FinishedAt,
		time.Duration(old.DurationNS).Round(time.Millisecond))
	ratio := func(oldNS, newNS int64) string {
		if oldNS <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2fx", float64(newNS)/float64(oldNS))
	}
	fmt.Fprintf(w, "positload:   inject p50 %v -> %v (%s), p99 %v -> %v (%s)\n",
		time.Duration(old.Inject.P50NS).Round(time.Microsecond),
		time.Duration(a.Inject.P50NS).Round(time.Microsecond),
		ratio(old.Inject.P50NS, a.Inject.P50NS),
		time.Duration(old.Inject.P99NS).Round(time.Microsecond),
		time.Duration(a.Inject.P99NS).Round(time.Microsecond),
		ratio(old.Inject.P99NS, a.Inject.P99NS))
	fmt.Fprintf(w, "positload:   qps %.1f -> %.1f, error rate %.4f -> %.4f\n",
		old.Inject.AchievedQPS, a.Inject.AchievedQPS,
		old.Budget.ErrorRate, a.Budget.ErrorRate)
	fmt.Fprintf(w, "positload:   campaigns completed %d -> %d, round-trip p99 %v -> %v (%s)\n",
		old.Campaigns.Completed, a.Campaigns.Completed,
		time.Duration(old.Campaigns.P99NS).Round(time.Millisecond),
		time.Duration(a.Campaigns.P99NS).Round(time.Millisecond),
		ratio(old.Campaigns.P99NS, a.Campaigns.P99NS))
}

// write persists the artifact atomically.
func (a *artifact) write(path string) error {
	raw, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("positload: artifact encode: %w", err)
	}
	if err := atomicio.WriteFileBytes(path, append(raw, '\n')); err != nil {
		return fmt.Errorf("positload: artifact: %w", err)
	}
	return nil
}

// print writes the human summary.
func (a *artifact) print(w io.Writer) {
	fmt.Fprintf(w, "positload: %s for %v\n", a.Target, time.Duration(a.DurationNS).Round(time.Millisecond))
	fmt.Fprintf(w, "positload: inject %d requests (%.1f qps, target %.1f), %d errors, p50 %v p95 %v p99 %v\n",
		a.Inject.Requests, a.Inject.AchievedQPS, a.TargetQPS, a.Inject.Errors,
		time.Duration(a.Inject.P50NS).Round(time.Microsecond),
		time.Duration(a.Inject.P95NS).Round(time.Microsecond),
		time.Duration(a.Inject.P99NS).Round(time.Microsecond))
	fmt.Fprintf(w, "positload: campaigns %d submitted, %d completed, %d failed, p99 %v\n",
		a.Campaigns.Submitted, a.Campaigns.Completed, a.Campaigns.Failed,
		time.Duration(a.Campaigns.P99NS).Round(time.Millisecond))
	if c := a.Chaos; c != nil {
		fmt.Fprintf(w, "positload: chaos injected %d latencies, %d resets, %d 5xx, %d truncations, %d corruptions over %d requests\n",
			c.Latencies, c.Resets, c.Synthetic5xx, c.Truncations, c.Corruptions, c.Requests)
	}
	if len(a.Budget.Violations) == 0 {
		fmt.Fprintf(w, "positload: BUDGET OK (error rate %.4f <= %.4f)\n", a.Budget.ErrorRate, a.Budget.MaxErrorRate)
		return
	}
	for _, v := range a.Budget.Violations {
		fmt.Fprintf(w, "positload: BUDGET VIOLATED: %s\n", v)
	}
}
