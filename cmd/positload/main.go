// Command positload is the chaos-and-soak traffic generator for
// positserve: it drives sustained concurrent /v1/inject and
// /v1/campaigns load at a configurable QPS, measures latency through
// the same log₂ histograms the service exports (internal/telemetry),
// asserts an error budget (max error rate, p99 ceiling), and writes a
// schema-tagged positres-load/v1 JSON artifact. With -smoke it needs
// no running server: an in-process positserve is stood up behind an
// in-process fault-injecting chaos proxy (internal/chaos), so one
// command proves the retry paths hold under deterministic hostility.
//
// Usage:
//
//	positload -target http://127.0.0.1:8080 -duration 30s -qps 50 \
//	    -out artifacts/load.json
//	positload -smoke -duration 5s -chaos-5xx-p 0.05 -chaos-corrupt-p 0.02
//
// docs/RESILIENCE.md ("Chaos & load") documents the fault matrix and
// budget semantics; docs/SERVICE.md documents the artifact schema.
//
// Exit codes: 0 budget held; 1 fatal error; 2 usage; 3 budget
// violated (the artifact, when requested, is still written).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"positres/internal/chaos"
	"positres/internal/serve"
	"positres/internal/spec"
)

// Exit codes of the load generator.
const (
	exitOK       = 0
	exitFatal    = 1
	exitUsage    = 2
	exitViolated = 3
)

func main() { os.Exit(run()) }

func run() int {
	fs := flag.NewFlagSet("positload", flag.ContinueOnError)
	var (
		target        = fs.String("target", "", "positserve base URL to load (required unless -smoke)")
		duration      = fs.Duration("duration", 30*time.Second, "how long to sustain load")
		qps           = fs.Float64("qps", 50, "target /v1/inject queries per second (aggregate)")
		injectWorkers = fs.Int("inject-workers", 8, "concurrent inject requesters")
		campaignLoops = fs.Int("campaign-loops", 1, "concurrent submit-poll-fetch campaign loops (0 disables)")
		field         = fs.String("campaign-field", "CESM/CLOUD", "sdrbench field of the load campaign")
		format        = fs.String("campaign-format", "posit8", "numfmt format of the load campaign")
		campaignN     = fs.Int("campaign-n", 256, "field length of the load campaign")
		trials        = fs.Int("campaign-trials", 2, "trials per bit of the load campaign")
		injectFormats = fs.String("inject-formats", "posit8,posit16,posit32,ieee32", "comma-separated formats the inject load draws from")
		seed          = fs.Uint64("seed", 1, "PRNG seed for generated inject values (deterministic per worker)")
		maxErrorRate  = fs.Float64("max-error-rate", 0.01, "error budget: max fraction of failed operations")
		maxP99        = fs.Duration("max-p99", 0, "error budget: inject p99 latency ceiling (0 = unchecked)")
		out           = fs.String("out", "", "write the positres-load/v1 JSON artifact here")
		baseline      = fs.String("baseline", "", "prior positres-load/v1 artifact to print a trajectory comparison against (informational)")
		campaignOut   = fs.String("campaign-out", "", "directory to publish final campaign CSVs into (for byte-comparison)")
		retryAttempts = fs.Int("retry-attempts", 4, "client retry budget per idempotent request")
		retryBase     = fs.Duration("retry-base", 100*time.Millisecond, "client retry backoff base delay")
		smoke         = fs.Bool("smoke", false, "self-contained run: in-process positserve behind an in-process chaos proxy")
		faults        chaos.Faults
	)
	faults.Register(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	if *target == "" && !*smoke {
		fmt.Fprintln(os.Stderr, "positload: -target is required (or use -smoke)")
		fs.Usage()
		return exitUsage
	}
	if *target != "" && *smoke {
		fmt.Fprintln(os.Stderr, "positload: -target and -smoke are mutually exclusive")
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var proxy *chaos.Proxy
	if *smoke {
		sm, err := startSmoke(ctx, faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "positload:", err)
			return exitFatal
		}
		defer sm.shutdown()
		*target = sm.proxyURL
		proxy = sm.proxy
		fmt.Printf("positload: smoke stack up (positserve %s behind chaos proxy %s)\n", sm.serveURL, sm.proxyURL)
	}

	cfg := loadConfig{
		Client: serve.NewClient(*target, &http.Client{Timeout: 30 * time.Second}).
			WithRetry(serve.RetryPolicy{MaxAttempts: *retryAttempts, BaseDelay: *retryBase}),
		Target:        *target,
		Duration:      *duration,
		QPS:           *qps,
		InjectWorkers: *injectWorkers,
		CampaignLoops: *campaignLoops,
		Campaign: spec.CampaignSpec{
			Fields: []string{*field}, Formats: []string{*format},
			N: *campaignN, TrialsPerBit: *trials, Seed: 7,
		},
		InjectFormats: strings.Split(*injectFormats, ","),
		Seed:          *seed,
		MaxErrorRate:  *maxErrorRate,
		MaxP99:        *maxP99,
		CampaignOut:   *campaignOut,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "positload: "+format+"\n", args...)
		},
	}

	art, err := runLoad(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "positload:", err)
		return exitFatal
	}
	if proxy != nil {
		st := proxy.Stats()
		art.Chaos = &st
	}
	if *out != "" {
		if err := art.write(*out); err != nil {
			fmt.Fprintln(os.Stderr, "positload:", err)
			return exitFatal
		}
		fmt.Printf("positload: artifact written to %s\n", *out)
	}
	art.print(os.Stdout)
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "positload:", err)
			return exitFatal
		}
		old, err := readArtifact(f)
		_ = f.Close() // read-only handle; the parse error dominates
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitFatal
		}
		art.compareBaseline(os.Stdout, old)
	}
	if len(art.Budget.Violations) > 0 {
		return exitViolated
	}
	return exitOK
}

// smokeStack is the in-process positserve + chaos proxy behind -smoke.
type smokeStack struct {
	serveURL string
	proxyURL string
	proxy    *chaos.Proxy
	shutdown func()
}

// startSmoke stands the stack up on loopback ports: a positserve with
// a throwaway data dir, fronted by a chaos proxy with the -chaos-*
// fault schedule. The caller loads the proxy URL.
func startSmoke(ctx context.Context, faults chaos.Faults) (*smokeStack, error) {
	dir, err := os.MkdirTemp("", "positload-smoke-*")
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(serve.Config{DataDir: dir, QueueDepth: 8, JobWorkers: 2})
	if err != nil {
		_ = os.RemoveAll(dir)
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	srv.Start(sctx)

	serveLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		_ = os.RemoveAll(dir)
		return nil, err
	}
	serveHS := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := serveHS.Serve(serveLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "positload: smoke serve:", err)
		}
	}()
	serveURL := "http://" + serveLn.Addr().String()

	proxy, err := chaos.New(serveURL, faults, nil)
	if err != nil {
		cancel()
		_ = serveHS.Close()
		_ = os.RemoveAll(dir)
		return nil, err
	}
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		_ = serveHS.Close()
		_ = os.RemoveAll(dir)
		return nil, err
	}
	proxyHS := &http.Server{Handler: proxy, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := proxyHS.Serve(proxyLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "positload: smoke proxy:", err)
		}
	}()

	return &smokeStack{
		serveURL: serveURL,
		proxyURL: "http://" + proxyLn.Addr().String(),
		proxy:    proxy,
		shutdown: func() {
			_ = proxyHS.Close()
			_ = serveHS.Close()
			cancel()
			srv.Wait()
			_ = os.RemoveAll(dir)
		},
	}, nil
}
