package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"positres/internal/chaos"
	"positres/internal/serve"
	"positres/internal/spec"
)

// newStack stands up an in-process positserve behind a chaos proxy
// and returns the proxy URL to load.
func newStack(t *testing.T, faults chaos.Faults) string {
	t.Helper()
	srv, err := serve.New(serve.Config{DataDir: t.TempDir(), QueueDepth: 8, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	sts := httptest.NewServer(srv.Handler())
	p, err := chaos.New(sts.URL, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(p)
	t.Cleanup(func() {
		pts.Close()
		sts.Close()
		cancel()
		srv.Wait()
	})
	return pts.URL
}

// loadCfg is a short, low-rate config against target.
func loadCfg(t *testing.T, target string) loadConfig {
	t.Helper()
	return loadConfig{
		Client: serve.NewClient(target, nil).
			WithRetry(serve.RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond}),
		Target:        target,
		Duration:      1500 * time.Millisecond,
		QPS:           40,
		InjectWorkers: 4,
		CampaignLoops: 1,
		Campaign: spec.CampaignSpec{
			Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit8"},
			N: 256, TrialsPerBit: 2, Seed: 7,
		},
		InjectFormats: []string{"posit8", "posit16", "ieee32"},
		Seed:          1,
		MaxErrorRate:  0.02,
		Logf:          t.Logf,
	}
}

func TestRunLoadCleanBudgetHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	target := newStack(t, chaos.Faults{})
	cfg := loadCfg(t, target)
	cfg.CampaignOut = t.TempDir()

	art, err := runLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != artifactSchema {
		t.Errorf("schema = %q, want %q", art.Schema, artifactSchema)
	}
	if art.Inject.Requests == 0 {
		t.Fatal("no inject load generated")
	}
	if art.Inject.Errors != 0 {
		t.Errorf("clean run had %d inject errors", art.Inject.Errors)
	}
	if art.Campaigns.Completed == 0 {
		t.Error("no campaign completed in a clean run")
	}
	if len(art.Budget.Violations) != 0 {
		t.Errorf("clean run violated budget: %v", art.Budget.Violations)
	}
	if art.Inject.P99NS <= 0 || art.Inject.P99NS < art.Inject.P50NS {
		t.Errorf("quantiles inconsistent: p50 %d p99 %d", art.Inject.P50NS, art.Inject.P99NS)
	}
	// The fetched campaign CSV landed under CampaignOut.
	csv := filepath.Join(cfg.CampaignOut, "CESM_CLOUD_posit8.csv")
	if st, err := os.Stat(csv); err != nil || st.Size() == 0 {
		t.Errorf("campaign CSV not published: %v", err)
	}
}

func TestRunLoadSurvivesChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	// Retryable faults only: the hardened client must absorb them all
	// within budget. (Body corruption of campaign CSVs is exercised in
	// the serve and e2e suites.)
	target := newStack(t, chaos.Faults{Seed: 11, Error5xxP: 0.10, ResetP: 0.05})
	cfg := loadCfg(t, target)
	cfg.MaxErrorRate = 0.02

	art, err := runLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if art.Inject.Requests == 0 {
		t.Fatal("no inject load generated")
	}
	if len(art.Budget.Violations) != 0 {
		t.Errorf("budget violated under retryable chaos: %v (errors %d/%d)",
			art.Budget.Violations, art.Inject.Errors, art.Inject.Requests)
	}
}

func TestEvalBudget(t *testing.T) {
	cfg := loadConfig{MaxErrorRate: 0.05, MaxP99: 100 * time.Millisecond}
	art := &artifact{
		Inject:    endpointReport{Requests: 90, Errors: 9, P99NS: int64(200 * time.Millisecond)},
		Campaigns: campaignReport{Submitted: 10, Failed: 1},
	}
	b := evalBudget(cfg, art)
	if len(b.Violations) != 2 {
		t.Fatalf("violations = %v, want error-rate and p99 breaches", b.Violations)
	}
	if !strings.Contains(b.Violations[0], "error rate") || !strings.Contains(b.Violations[1], "p99") {
		t.Errorf("violation texts: %v", b.Violations)
	}
	if b.ErrorRate != 0.1 {
		t.Errorf("error rate = %v, want 0.1", b.ErrorRate)
	}

	// Within budget: no violations.
	art.Inject.Errors, art.Campaigns.Failed = 0, 0
	art.Inject.P99NS = int64(50 * time.Millisecond)
	if b := evalBudget(cfg, art); len(b.Violations) != 0 {
		t.Errorf("clean tallies still violated: %v", b.Violations)
	}

	// Zero operations is itself a violation (the target never answered).
	empty := evalBudget(cfg, &artifact{})
	if len(empty.Violations) == 0 {
		t.Error("zero-operation run passed the budget")
	}
}

func TestArtifactWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	art := &artifact{Schema: artifactSchema, Target: "http://x", TargetQPS: 5}
	if err := art.write(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back artifact
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Schema != artifactSchema {
		t.Errorf("schema = %q, want %q", back.Schema, artifactSchema)
	}
}
