// Command positserve exposes the fault-injection engine as an HTTP
// service: synchronous single-bit what-if queries on /v1/inject,
// durable campaign jobs on /v1/campaigns (bounded queue, resumable
// across restarts from the shard journal under -data-dir), and
// positres-telemetry/v1 snapshots plus per-endpoint counters on
// /metrics. docs/SERVICE.md is the API reference.
//
// Usage:
//
//	positserve -data-dir state/
//	positserve -addr 127.0.0.1:0 -data-dir state/ -queue-depth 8
//
// The first stdout line is always "positserve: listening on
// http://HOST:PORT", so scripts can bind -addr 127.0.0.1:0 and scrape
// the chosen port.
//
// On SIGINT/SIGTERM the server drains gracefully: the listener stops,
// running campaigns are cancelled through the runner (completed
// shards stay journaled, manifests record "cancelled"), and the
// process exits 0; the next start on the same -data-dir resumes
// unfinished jobs automatically.
//
// Exit codes: 0 clean shutdown; 1 fatal error; 2 usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"positres/internal/serve"
	"positres/internal/telemetry"
)

// Exit codes of the server process.
const (
	exitOK    = 0
	exitFatal = 1
	exitUsage = 2
)

func main() { os.Exit(run()) }

func run() int {
	fs := flag.NewFlagSet("positserve", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		dataDir         = fs.String("data-dir", "", "state root for jobs and journals (required)")
		queueDepth      = fs.Int("queue-depth", 64, "max campaigns queued but not yet running (beyond it: 429)")
		jobWorkers      = fs.Int("job-workers", 1, "campaigns run concurrently")
		campaignWorkers = fs.Int("campaign-workers", 0, "shard workers per campaign (0 = GOMAXPROCS)")
		requestTimeout  = fs.Duration("request-timeout", 15*time.Second, "deadline for synchronous endpoints")
		injectCache     = fs.Int("inject-cache", 4096, "inject LRU capacity in (format, pattern, bit) entries")
		workersFlag     = fs.String("workers", "", "comma-separated worker base URLs to coordinate (campaign shards are dispatched to them)")
		register        = fs.String("register", "", "coordinator base URL to self-register with as a worker")
		advertise       = fs.String("advertise", "", "base URL the coordinator should dial this worker at (default http://<addr> once listening)")
		heartbeat       = fs.Duration("heartbeat", 5*time.Second, "worker health-probe period in coordinator mode")
		crashAfter      = fs.Int("debug-crash-after", 0, "TESTING: exit(137) without drain after N shard completions")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "positserve: -data-dir is required")
		fs.Usage()
		return exitUsage
	}

	var workers []string
	if *workersFlag != "" {
		for _, u := range strings.Split(*workersFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workers = append(workers, u)
			}
		}
	}

	metrics := telemetry.New()
	telemetry.Publish("positserve", metrics)
	srv, err := serve.New(serve.Config{
		DataDir:           *dataDir,
		QueueDepth:        *queueDepth,
		JobWorkers:        *jobWorkers,
		CampaignWorkers:   *campaignWorkers,
		RequestTimeout:    *requestTimeout,
		InjectCacheSize:   *injectCache,
		Metrics:           metrics,
		Workers:           workers,
		HeartbeatInterval: *heartbeat,
		CrashAfterShards:  *crashAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "positserve:", err)
		return exitFatal
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "positserve:", err)
		return exitFatal
	}
	// First line of output, parsed by scripts/serve_e2e.sh and
	// scripts/cluster_e2e.sh to learn the port when -addr ends in :0.
	fmt.Printf("positserve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)

	if *register != "" {
		// Worker mode: announce ourselves to the coordinator. Retried a
		// few times so start order does not matter in scripts.
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		go func() {
			client := serve.NewClient(*register, nil)
			for attempt := 1; attempt <= 5; attempt++ {
				rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				err := client.RegisterWorker(rctx, self)
				cancel()
				if err == nil {
					fmt.Printf("positserve: registered with coordinator %s as %s\n", *register, self)
					return
				}
				fmt.Fprintf(os.Stderr, "positserve: register attempt %d: %v\n", attempt, err)
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Duration(attempt) * time.Second):
				}
			}
			fmt.Fprintln(os.Stderr, "positserve: giving up registering with coordinator")
		}()
	}

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	// The drain goroutine consults ctx: on the first signal it stops
	// the listener (in-flight requests get 5s to finish), which
	// unblocks hs.Serve below.
	go func(ctx context.Context) {
		<-ctx.Done()
		sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sdCtx); err != nil {
			fmt.Fprintln(os.Stderr, "positserve: shutdown:", err)
		}
	}(ctx)

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "positserve:", err)
		return exitFatal
	}
	// Listener is down; wait for running campaigns to cancel and
	// journal before exiting 0.
	srv.Wait()
	fmt.Println("positserve: drained, exiting")
	return exitOK
}
