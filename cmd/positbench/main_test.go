package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the whole binary path — flag parsing, the
// benchmark suite at 1 iteration each, derived metrics, and the
// atomic JSON write — and validates the emitted baseline document.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if code := run([]string{"-smoke", "-out", out}, &buf); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if !rep.Smoke {
		t.Fatal("smoke flag not recorded")
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("no benchmarks recorded")
	}
	names := map[string]bool{}
	for _, b := range rep.Benchmarks {
		if b.N <= 0 {
			t.Fatalf("%s ran %d iterations", b.Name, b.N)
		}
		if b.NsPerOp <= 0 {
			t.Fatalf("%s ns/op = %v", b.Name, b.NsPerOp)
		}
		names[b.Name] = true
	}
	for _, want := range []string{
		"posit8_decode_lut", "posit8_decode_generic",
		"posit16_decode_lut", "posit16_decode_generic",
		"campaign_posit32",
	} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
	for _, k := range []string{"posit8_decode_speedup", "posit16_decode_speedup", "campaign_injections_per_sec"} {
		if rep.Derived[k] <= 0 {
			t.Fatalf("derived %s = %v, want > 0", k, rep.Derived[k])
		}
	}
	if !strings.Contains(buf.String(), "baseline:") {
		t.Fatalf("stdout missing baseline line:\n%s", buf.String())
	}
}

// TestRunBadFlag ensures usage errors exit 2 without running benches.
func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &buf); code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
}
