// Command positbench is the repo's benchmark driver: it runs the
// fixed-budget performance suite — campaign injection throughput,
// posit substrate micro-benchmarks (encode/decode/arithmetic/quire),
// the LUT-vs-generic and CLZ-vs-generic decode comparisons, the
// binary-wire-vs-CSV trial codec comparison, and representative
// figure regenerations — through testing.Benchmark and writes a
// schema-versioned JSON baseline (see docs/PERF.md) suitable for
// committing as BENCH_<pr>.json and diffing across PRs.
//
// Usage:
//
//	positbench                      # human-readable table on stdout
//	positbench -out BENCH_PR3.json  # also write the JSON baseline
//	positbench -smoke               # tiny budget for CI smoke runs
//	positbench -benchtime 1s        # override the per-bench budget
//
// Exit codes: 0 success; 1 a benchmark failed; 2 usage.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"positres/internal/artifact"
	"positres/internal/atomicio"
	"positres/internal/core"
	"positres/internal/ecc"
	"positres/internal/figures"
	"positres/internal/numfmt"
	"positres/internal/posit"
	"positres/internal/sdrbench"
	"positres/internal/serve"
	"positres/internal/spec"
	"positres/internal/store"
	"positres/internal/telemetry"
	"positres/internal/textplot"
	"positres/internal/wire"
)

// ReportSchema versions the JSON layout of the emitted baseline. Bump
// it on any breaking field change so trajectory tooling can dispatch.
const ReportSchema = "positres-bench/v1"

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string             `json:"name"`              // Go benchmark name, e.g. BenchmarkEncodePosit16
	N           int                `json:"n"`                 // iterations actually run
	NsPerOp     float64            `json:"ns_per_op"`         // wall time per iteration
	AllocsPerOp int64              `json:"allocs_per_op"`     // heap allocations per iteration
	BytesPerOp  int64              `json:"bytes_per_op"`      // heap bytes per iteration
	Metrics     map[string]float64 `json:"metrics,omitempty"` // b.ReportMetric extras
}

// Report is the full baseline document.
type Report struct {
	Schema     string             `json:"schema"`         // always ReportSchema
	GitSHA     string             `json:"git_sha"`        // HEAD commit, "unknown" outside a checkout
	GoVersion  string             `json:"go_version"`     // runtime.Version() of the toolchain
	GOOS       string             `json:"goos"`           // build target OS
	GOARCH     string             `json:"goarch"`         // build target architecture
	GOMAXPROCS int                `json:"gomaxprocs"`     // parallelism during the run
	NumCPU     int                `json:"num_cpu"`        // logical CPUs on the host
	UnixTime   int64              `json:"unix_time"`      // measurement time, Unix seconds
	Benchtime  string             `json:"benchtime"`      // -benchtime value the run used
	Smoke      bool               `json:"smoke"`          // true for -smoke runs (not comparable)
	DatasetN   int                `json:"dataset_n"`      // synthetic field length per campaign bench
	TrialsBit  int                `json:"trials_per_bit"` // campaign trials per bit position
	Seed       uint64             `json:"seed"`           // PRNG seed of the campaign benches
	Benchmarks []BenchResult      `json:"benchmarks"`     // one entry per benchmark, stable order
	Derived    map[string]float64 `json:"derived"`        // cross-benchmark ratios (see deriveMetrics)
}

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("positbench", flag.ContinueOnError)
	outPath := fs.String("out", "", "write the JSON baseline to this file (atomic rename)")
	smoke := fs.Bool("smoke", false, "tiny budgets for CI smoke runs (1 iteration per bench)")
	benchtime := fs.String("benchtime", "", "per-benchmark budget (go test -benchtime syntax; default 0.2s, smoke 1x)")
	comparePath := fs.String("compare", "", "diff this run against a prior baseline JSON (schema-checked) after measuring")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// testing.Benchmark honors the test.benchtime flag, which only
	// exists after testing.Init. Init is a no-op inside `go test`
	// binaries (the framework already ran it), so positbench's own
	// main_test.go can exercise this path.
	testing.Init()
	bt := *benchtime
	if bt == "" {
		if *smoke {
			bt = "1x"
		} else {
			bt = "0.2s"
		}
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		fmt.Fprintln(os.Stderr, "positbench: set benchtime:", err)
		return 2
	}

	budget := figures.Budget{DatasetN: 50_000, TrialsPerBit: 40, Seed: 1}
	if *smoke {
		budget = figures.Budget{DatasetN: 2_000, TrialsPerBit: 4, Seed: 1}
	}

	rep := Report{
		Schema:     ReportSchema,
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		UnixTime:   time.Now().Unix(),
		Benchtime:  bt,
		Smoke:      *smoke,
		DatasetN:   budget.DatasetN,
		TrialsBit:  budget.TrialsPerBit,
		Seed:       budget.Seed,
		Derived:    map[string]float64{},
	}

	table := &textplot.Table{Header: []string{"benchmark", "ns/op", "allocs/op", "extra"}}
	byName := map[string]BenchResult{}
	for _, c := range benchCases(budget) {
		res := testing.Benchmark(c.fn)
		if res.N == 0 {
			fmt.Fprintf(os.Stderr, "positbench: %s produced no iterations (failed)\n", c.name)
			return 1
		}
		br := BenchResult{
			Name:        c.name,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if len(res.Extra) > 0 {
			br.Metrics = map[string]float64{}
			for k, v := range res.Extra {
				br.Metrics[k] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, br)
		byName[c.name] = br
		table.AddRow(c.name, fmt.Sprintf("%.1f", br.NsPerOp),
			fmt.Sprintf("%d", br.AllocsPerOp), extraString(br.Metrics))
	}

	// Derived headline numbers: the LUT and CLZ decode tiers' measured
	// wins, the binary wire's win over the CSV codec, and the
	// campaign's injection rate (the telemetry counter cross-check).
	for _, w := range []int{8, 16} {
		lut := byName[fmt.Sprintf("posit%d_decode_lut", w)]
		gen := byName[fmt.Sprintf("posit%d_decode_generic", w)]
		if lut.NsPerOp > 0 {
			rep.Derived[fmt.Sprintf("posit%d_decode_speedup", w)] = gen.NsPerOp / lut.NsPerOp
		}
	}
	for _, w := range []int{32, 64} {
		clz := byName[fmt.Sprintf("posit%d_decode_clz", w)]
		gen := byName[fmt.Sprintf("posit%d_decode_generic", w)]
		if clz.NsPerOp > 0 {
			rep.Derived[fmt.Sprintf("posit%d_decode_speedup", w)] = gen.NsPerOp / clz.NsPerOp
		}
	}
	if we, ok := byName["wire_encode_shard"]; ok && we.NsPerOp > 0 {
		if ce, ok2 := byName["csv_encode_shard"]; ok2 {
			rep.Derived["wire_encode_speedup"] = ce.NsPerOp / we.NsPerOp
			if fb := we.Metrics["frame_bytes"]; fb > 0 {
				rep.Derived["wire_csv_size_ratio"] = ce.Metrics["csv_bytes"] / fb
			}
		}
	}
	if wd, ok := byName["wire_decode_shard"]; ok && wd.NsPerOp > 0 {
		if cd, ok2 := byName["csv_decode_shard"]; ok2 {
			rep.Derived["wire_decode_speedup"] = cd.NsPerOp / wd.NsPerOp
		}
	}
	if c, ok := byName["campaign_posit32"]; ok {
		rep.Derived["campaign_injections_per_sec"] = c.Metrics["injections/s"]
	}
	if sa, ok := byName["store_append_shard"]; ok {
		rep.Derived["store_append_allocs_per_op"] = float64(sa.AllocsPerOp)
		if tps := sa.Metrics["trials_per_shard"]; tps > 0 && sa.NsPerOp > 0 {
			rep.Derived["store_append_trials_per_sec"] = tps / (sa.NsPerOp / 1e9)
		}
	}
	if fa, ok := byName["fig_from_aggregates"]; ok {
		if rr, ok2 := byName["store_render_csv"]; ok2 && fa.NsPerOp > 0 {
			// How much cheaper the aggregate path is than even one CSV
			// render of the same store (a full-campaign rescan would be
			// larger still).
			rep.Derived["agg_figure_vs_render_speedup"] = rr.NsPerOp / fa.NsPerOp
		}
	}
	if one, ok := byName["cluster_campaign_1worker"]; ok {
		if three, ok3 := byName["cluster_campaign_3workers"]; ok3 && three.NsPerOp > 0 {
			rep.Derived["cluster_scaleout_3v1"] = one.NsPerOp / three.NsPerOp
		}
	}

	fmt.Fprint(stdout, table.Render())
	for _, k := range []string{"posit8_decode_speedup", "posit16_decode_speedup",
		"posit32_decode_speedup", "posit64_decode_speedup",
		"wire_encode_speedup", "wire_decode_speedup", "wire_csv_size_ratio",
		"campaign_injections_per_sec", "cluster_scaleout_3v1",
		"store_append_allocs_per_op", "store_append_trials_per_sec",
		"agg_figure_vs_render_speedup"} {
		if v, ok := rep.Derived[k]; ok {
			fmt.Fprintf(stdout, "%s: %.2f\n", k, v)
		}
	}

	if *outPath != "" {
		err := atomicio.WriteFile(*outPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "positbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "baseline: %s\n", *outPath)
	}
	if *comparePath != "" {
		if err := compareBaseline(stdout, *comparePath, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "positbench:", err)
			return 1
		}
	}
	return 0
}

// compareBaseline diffs this run against a committed baseline: shared
// benchmarks by ns/op ratio, plus every derived metric side by side.
// The old document's schema tag is verified before anything is
// trusted — a /v2 baseline (or a non-bench JSON) is refused, not
// misread. The diff is informational: performance gating stays a human
// judgement (docs/PERF.md), so mismatched numbers never fail the run.
func compareBaseline(stdout io.Writer, path string, cur *Report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Report
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := artifact.CheckSchema(old.Schema, ReportSchema); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if old.Smoke || cur.Smoke {
		fmt.Fprintf(stdout, "compare: smoke baselines are not comparable (old smoke=%v, new smoke=%v); showing anyway\n",
			old.Smoke, cur.Smoke)
	}
	oldBy := map[string]BenchResult{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	t := &textplot.Table{Header: []string{"benchmark", "old ns/op", "new ns/op", "new/old", "allocs old→new"}}
	for _, b := range cur.Benchmarks {
		o, ok := oldBy[b.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		t.AddRow(b.Name, fmt.Sprintf("%.1f", o.NsPerOp), fmt.Sprintf("%.1f", b.NsPerOp),
			fmt.Sprintf("%.2f", b.NsPerOp/o.NsPerOp),
			fmt.Sprintf("%d→%d", o.AllocsPerOp, b.AllocsPerOp))
	}
	fmt.Fprintf(stdout, "compare vs %s (%s, go %s):\n%s", path, old.GitSHA, old.GoVersion, t.Render())
	for k, v := range cur.Derived {
		if ov, ok := old.Derived[k]; ok {
			fmt.Fprintf(stdout, "derived %s: %.2f -> %.2f\n", k, ov, v)
		} else {
			fmt.Fprintf(stdout, "derived %s: (new) %.2f\n", k, v)
		}
	}
	return nil
}

// gitSHA best-effort resolves the current commit for provenance; a
// missing git binary or repo yields "unknown", never an error.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func extraString(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%.0f", k, v))
	}
	return strings.Join(parts, " ")
}

// sink variables defeat dead-code elimination in micro-benches.
var (
	sinkU64 uint64
	sinkF64 float64
)

type benchCase struct {
	name string
	fn   func(b *testing.B)
}

// benchClusterCampaign measures a distributed campaign end to end: a
// coordinator and n workers (all in-process, connected over real HTTP
// via httptest), one posit32 campaign per iteration submitted with
// ?wait=1. Dispatch concurrency matches the fleet size, as a real
// deployment would configure it.
func benchClusterCampaign(nWorkers int, budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		var done []func()
		defer func() {
			cancel()
			for i := len(done) - 1; i >= 0; i-- {
				done[i]()
			}
		}()
		newNode := func(cfg serve.Config) string {
			dir, err := os.MkdirTemp("", "positbench-cluster-")
			if err != nil {
				b.Fatal(err)
			}
			cfg.DataDir = dir
			srv, err := serve.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			srv.Start(ctx)
			ts := httptest.NewServer(srv.Handler())
			done = append(done, func() {
				srv.Wait()
				ts.Close()
				_ = os.RemoveAll(dir)
			})
			return ts.URL
		}
		workers := make([]string, nWorkers)
		for i := range workers {
			workers[i] = newNode(serve.Config{})
		}
		coord := newNode(serve.Config{Workers: workers, CampaignWorkers: nWorkers})
		client := serve.NewClient(coord, nil)

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cs := &spec.CampaignSpec{
				Fields:       []string{"Hurricane/Vf30"},
				Formats:      []string{"posit32"},
				N:            budget.DatasetN,
				TrialsPerBit: budget.TrialsPerBit,
				Seed:         uint64(i + 1),
				BitsPerShard: 4,
			}
			st, err := client.SubmitCampaign(ctx, cs, true)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != "complete" {
				b.Fatalf("campaign state %q: %s", st.State, st.Error)
			}
		}
		// 32 bit positions × TrialsPerBit injections per campaign.
		total := float64(32*budget.TrialsPerBit) * float64(b.N)
		b.ReportMetric(total/b.Elapsed().Seconds(), "injections/s")
	}
}

// benchCases builds the suite. Order is the report order.
func benchCases(budget figures.Budget) []benchCase {
	return []benchCase{
		// LUT-vs-generic decode: the PR 3 optimization under test.
		{"posit8_decode_lut", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64(posit.Std8, uint64(i&0xFF))
			}
		}},
		{"posit8_decode_generic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64Generic(posit.Std8, uint64(i&0xFF))
			}
		}},
		{"posit16_decode_lut", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64(posit.Std16, uint64(i&0xFFFF))
			}
		}},
		{"posit16_decode_generic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64Generic(posit.Std16, uint64(i&0xFFFF))
			}
		}},
		// CLZ-vs-generic decode: the branchless fast path the wide
		// formats dispatch to (posit8/16 take the LUT tier instead; the
		// tier table is in docs/ARCHITECTURE.md).
		{"posit32_decode_clz", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64CLZ(posit.Std32, uint64(0x40000000+i&0xFFFFF))
			}
		}},
		{"posit32_decode_generic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64Generic(posit.Std32, uint64(0x40000000+i&0xFFFFF))
			}
		}},
		{"posit64_decode_clz", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64CLZ(posit.Std64, uint64(0x4000000000000000+i&0xFFFFF))
			}
		}},
		{"posit64_decode_generic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64Generic(posit.Std64, uint64(0x4000000000000000+i&0xFFFFF))
			}
		}},
		// Substrate micro-benches.
		{"posit32_encode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkU64 = posit.EncodeFloat64(posit.Std32, 186.25+float64(i&1023))
			}
		}},
		{"posit32_decode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF64 = posit.DecodeFloat64(posit.Std32, uint64(0x40000000+i&0xFFFFF))
			}
		}},
		{"posit32_add", func(b *testing.B) {
			x := posit.EncodeFloat64(posit.Std32, 186.25)
			y := posit.EncodeFloat64(posit.Std32, 0.0625)
			for i := 0; i < b.N; i++ {
				sinkU64 = posit.Add(posit.Std32, x, y)
			}
		}},
		{"posit32_mul", func(b *testing.B) {
			x := posit.EncodeFloat64(posit.Std32, 186.25)
			y := posit.EncodeFloat64(posit.Std32, 3.5)
			for i := 0; i < b.N; i++ {
				sinkU64 = posit.Mul(posit.Std32, x, y)
			}
		}},
		{"quire_dot64", benchQuireDot},
		{"ecc_secded_roundtrip", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cw := ecc.Encode(uint32(i))
				v, st := ecc.Decode(cw)
				if st != ecc.OK || v != uint32(i) {
					b.Fatal("ecc roundtrip")
				}
			}
		}},
		// Campaign throughput: injections/sec plus the hot path's
		// allocation profile (the trial-loop alloc reduction shows up
		// here as allocs/op).
		{"campaign_posit32", benchCampaign("posit32", budget)},
		{"campaign_posit16", benchCampaign("posit16", budget)},
		// The steady-state single-node loop: RunRangeInto at one worker
		// with a reused trial buffer — the shape the runner drives per
		// shard. 0 allocs/op is the PR 9 acceptance number.
		{"campaign_runrange_posit32", benchRunRange("posit32", budget)},
		// Trial codecs: one shard's trials through the packed binary
		// frame (docs/WIRE.md) vs the CSV journal encoding.
		{"wire_encode_shard", benchWireEncode(budget)},
		{"csv_encode_shard", benchCSVEncode(budget)},
		{"wire_decode_shard", benchWireDecode(budget)},
		{"csv_decode_shard", benchCSVDecode(budget)},
		// Distributed fan-out: the same engine behind positserve
		// coordinator mode, dispatching every shard over HTTP to an
		// in-process worker fleet. 1 vs 3 workers gives the scale-out
		// ratio (derived: cluster_scaleout_3v1); the gap between
		// cluster_campaign_1worker and campaign_posit32 is the wire
		// overhead of shipping trials as CSV.
		{"cluster_campaign_1worker", benchClusterCampaign(1, budget)},
		{"cluster_campaign_3workers", benchClusterCampaign(3, budget)},
		// The columnar trial store: shard append (encode + online
		// aggregation, the runner's sink path), CSV render from columns
		// (what GET /results streams), and a figure built purely from
		// the footer aggregates — no trial rescan, so its cost is
		// O(bits) however large the campaign was.
		{"store_append_shard", benchStoreAppend(budget)},
		{"store_render_csv", benchStoreRender(budget)},
		{"fig_from_aggregates", benchFigFromAggs(budget)},
		// Representative figure regenerations.
		{"fig_table1_summary", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := figures.Table1(budget)
				if len(t.Rows) == 0 {
					b.Fatal("table rows")
				}
			}
		}},
		{"fig3_ieee_sweep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := figures.Fig3()
				if len(c.Series) == 0 {
					b.Fatal("sweep series")
				}
			}
		}},
	}
}

func benchQuireDot(b *testing.B) {
	const n = 64
	a := make([]uint64, n)
	v := make([]float64, n)
	for i := range a {
		a[i] = posit.EncodeFloat64(posit.Std32, float64(i)+0.5)
		v[i] = 1.0 / (float64(i) + 1)
	}
	enc := make([]uint64, n)
	for i := range v {
		enc[i] = posit.EncodeFloat64(posit.Std32, v[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := posit.NewQuire(posit.Std32)
		for j := range a {
			q.AddProduct(a[j], enc[j])
		}
		sinkU64 = q.ToPosit()
	}
}

// shardTrials computes one representative shard's trials — the full
// posit32 bit range of one field at the budget's TrialsPerBit — for
// the wire-vs-CSV codec benches.
func shardTrials(b *testing.B, budget figures.Budget) []core.Trial {
	b.Helper()
	field, err := sdrbench.Lookup("Hurricane/Vf30")
	if err != nil {
		b.Fatal(err)
	}
	data := sdrbench.ToFloat64(field.Generate(budget.DatasetN, 1))
	codec, err := numfmt.Lookup("posit32")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.TrialsPerBit = budget.TrialsPerBit
	trials, err := core.RunRange(context.Background(), cfg, codec, field.Key(), data, 0, codec.Width())
	if err != nil {
		b.Fatal(err)
	}
	return trials
}

// benchWireEncode measures AppendFrame over a reused buffer — the
// worker's steady-state encode path.
func benchWireEncode(budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		trials := shardTrials(b, budget)
		var dst []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = wire.AppendFrame(dst[:0], trials)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(dst)), "frame_bytes")
	}
}

// benchCSVEncode measures WriteTrialsCSV into a reused buffer — the
// CSV fallback's encode path (and the journal's).
func benchCSVEncode(budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		trials := shardTrials(b, budget)
		var buf bytes.Buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := core.WriteTrialsCSV(&buf, trials); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "csv_bytes")
	}
}

// benchWireDecode measures DecodeFrame of one shard frame.
func benchWireDecode(budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		frame, err := wire.EncodeFrame(shardTrials(b, budget))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trials, _, err := wire.DecodeFrame(frame)
			if err != nil {
				b.Fatal(err)
			}
			sinkU64 = uint64(len(trials))
		}
	}
}

// benchCSVDecode measures ReadTrialsCSV of the same shard as CSV.
func benchCSVDecode(budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		var buf bytes.Buffer
		if err := core.WriteTrialsCSV(&buf, shardTrials(b, budget)); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trials, err := core.ReadTrialsCSV(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			sinkU64 = uint64(len(trials))
		}
	}
}

// storeShard builds a sealed one-shard store for the render and
// aggregate benches, returning its path.
func storeShard(b *testing.B, budget figures.Budget, dir string) string {
	b.Helper()
	trials := shardTrials(b, budget)
	path := filepath.Join(dir, store.FileName("Hurricane/Vf30", "posit32"))
	w, err := store.NewWriter(path, "Hurricane/Vf30", "posit32")
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AppendShard(0, 32, trials); err != nil {
		b.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		b.Fatal(err)
	}
	return path
}

// benchStoreAppend measures the runner-sink hot path: one shard's
// trials encoded as a columnar block and folded into the per-bit
// aggregates, over a reused writer. Allocs/op here is the store's
// steady-state append cost (BENCH_PR10's acceptance number).
func benchStoreAppend(budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		trials := shardTrials(b, budget)
		w, err := store.NewWriter(filepath.Join(b.TempDir(), "append.pts"), "Hurricane/Vf30", "posit32")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Abort()
		// Warm the scratch buffers and sketch buckets out of the
		// measurement, as a long campaign would.
		if err := w.AppendShard(0, 32, trials); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.AppendShard(0, 32, trials); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(trials)), "trials_per_shard")
	}
}

// benchStoreRender measures RenderCSV of one sealed shard — the
// on-demand CSV path behind GET /results.
func benchStoreRender(budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		rd, err := store.Open(storeShard(b, budget, b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		defer rd.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rd.RenderCSV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(rd.Rows()), "rows")
	}
}

// benchFigFromAggs measures a per-bit figure assembled from the store
// footer alone — the aggregate-driven positreport path. No trial row
// is decoded; the whole build is O(bits).
func benchFigFromAggs(budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		rd, err := store.Open(storeShard(b, budget, b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		defer rd.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			aggs := rd.BitAggs()
			c := figures.AggChart("bench", []textplot.Series{figures.AggSeries("posit32", aggs)})
			if len(c.Series[0].X) == 0 {
				b.Fatal("empty aggregate series")
			}
		}
	}
}

// benchRunRange measures the allocation-free single-node campaign
// loop: RunRangeInto at Workers == 1 with one trial buffer threaded
// through every iteration. Allocs/op here is the number BENCH_PR9.json
// pins at zero.
func benchRunRange(codecName string, budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		field, err := sdrbench.Lookup("Hurricane/Vf30")
		if err != nil {
			b.Fatal(err)
		}
		data := sdrbench.ToFloat64(field.Generate(budget.DatasetN, 1))
		codec, err := numfmt.Lookup(codecName)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.TrialsPerBit = budget.TrialsPerBit
		cfg.Workers = 1
		key := field.Key() // Key() concatenates; hoist it so the loop stays 0-alloc
		var buf []core.Trial
		// Warm the buffer once so first-call growth lands outside the
		// timed loop; afterwards every iteration reuses its capacity.
		buf, err = core.RunRangeInto(context.Background(), cfg, codec, key, data, 0, codec.Width(), buf)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			buf, err = core.RunRangeInto(context.Background(), cfg, codec, key, data, 0, codec.Width(), buf)
			if err != nil {
				b.Fatal(err)
			}
			total += len(buf)
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "injections/s")
	}
}

// benchCampaign measures raw core.Run throughput for one codec with a
// live telemetry sink attached (so the overhead measured here is the
// instrumented production path) and cross-checks the counter against
// the trial slice the campaign returns.
func benchCampaign(codecName string, budget figures.Budget) func(*testing.B) {
	return func(b *testing.B) {
		field, err := sdrbench.Lookup("Hurricane/Vf30")
		if err != nil {
			b.Fatal(err)
		}
		data := sdrbench.ToFloat64(field.Generate(budget.DatasetN, 1))
		codec, err := numfmt.Lookup(codecName)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.TrialsPerBit = budget.TrialsPerBit
		cfg.Metrics = telemetry.New()
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(i + 1)
			r, err := core.Run(context.Background(), cfg, codec, field.Key(), data)
			if err != nil {
				b.Fatal(err)
			}
			total += len(r.Trials)
		}
		if got := cfg.Metrics.Injections.Load(); got != int64(total) {
			b.Fatalf("telemetry drift: counted %d injections, ran %d", got, total)
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "injections/s")
	}
}
