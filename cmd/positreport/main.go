// Command positreport regenerates the paper's tables and figures as
// text charts (and optionally TSV series for external plotting).
//
// Usage:
//
//	positreport -fig 10                 # one figure, quick budget
//	positreport -fig all -budget paper  # everything at 313 trials/bit
//	positreport -fig 20 -tsv out/       # also dump TSV series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"positres/internal/atomicio"
	"positres/internal/core"
	"positres/internal/figures"
	"positres/internal/textplot"
)

// renderable is anything with a text rendering.
type renderable interface{ Render() string }

func main() {
	var (
		figFlag    = flag.String("fig", "all", "figure id: table1, 3, 7, 10, 11, 11abs, 14, 16, 18, 20, findings, widths, multibit, ablation, or all")
		budgetName = flag.String("budget", "quick", "quick (fast) or paper (313 trials/bit, 2M elements)")
		tsvDir     = flag.String("tsv", "", "directory to also write TSV series into")
		datasetN   = flag.Int("n", 0, "override dataset sample size")
		trials     = flag.Int("trials", 0, "override trials per bit")
		seed       = flag.Uint64("seed", 0, "override seed")
		fromDir    = flag.String("from", "", "offline mode: render per-bit curves from campaign CSV logs in this directory instead of re-running")
	)
	flag.Parse()

	if *fromDir != "" {
		if err := offline(*fromDir); err != nil {
			fatal(err)
		}
		return
	}

	b := figures.QuickBudget
	if *budgetName == "paper" {
		b = figures.PaperBudget
	}
	if *datasetN > 0 {
		b.DatasetN = *datasetN
	}
	if *trials > 0 {
		b.TrialsPerBit = *trials
	}
	if *seed > 0 {
		b.Seed = *seed
	}

	builders := map[string]func() renderable{
		"table1":     func() renderable { return figures.Table1(b) },
		"3":          func() renderable { return figures.Fig3() },
		"7":          func() renderable { return figures.Fig7() },
		"10":         func() renderable { return figures.Fig10(b) },
		"11":         func() renderable { return figures.Fig11(b) },
		"11abs":      func() renderable { return figures.Fig11AbsErr(b) },
		"14":         func() renderable { return figures.Fig14(b) },
		"16":         func() renderable { return figures.Fig16(b) },
		"18":         func() renderable { return figures.Fig18(b) },
		"20":         func() renderable { return figures.Fig20(b) },
		"findings":   func() renderable { return figures.FindingsTable(b, figures.Fig10Fields) },
		"widths":     func() renderable { return figures.WidthSweep(b, "Hurricane/Vf30") },
		"multibit":   func() renderable { return figures.MultiBitTable(b, "HACC/vy") },
		"ablation":   func() renderable { return figures.ESAblation(b, "CESM/RELHUM") },
		"solver":     func() renderable { return figures.SolverImpactTable(b) },
		"protection": func() renderable { return figures.ProtectionTable(b) },
		"softerror":  func() renderable { return figures.SoftErrorTable(b) },
		"ml":         func() renderable { return figures.MLFlipChart(b) },
		"mltable":    func() renderable { return figures.MLImpactTable(b) },
		"detection":  func() renderable { return figures.DetectionChart(b) },
		"dettable":   func() renderable { return figures.DetectionTable(b) },
		"abft":       func() renderable { return figures.ABFTTable(b) },
		"checkpoint": func() renderable { return figures.CheckpointTable(b) },
		"sdc":        func() renderable { return figures.SDCChart(b, 1) },
		"sdctable":   func() renderable { return figures.SDCTable(b) },
		"repr":       func() renderable { return figures.RepresentationTable(b) },
	}
	order := []string{"table1", "3", "7", "10", "11", "11abs", "14", "16", "18", "20",
		"findings", "widths", "multibit", "ablation", "solver", "protection", "softerror", "ml", "mltable", "detection", "dettable", "abft", "checkpoint", "sdc", "sdctable", "repr"}

	var ids []string
	if *figFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := builders[id]; !ok {
				fmt.Fprintf(os.Stderr, "positreport: unknown figure %q (known: %s, all)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *tsvDir != "" {
		if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		r := builders[id]()
		fmt.Println(r.Render())
		if *tsvDir != "" {
			if lc, ok := r.(*textplot.LineChart); ok {
				path := filepath.Join(*tsvDir, "fig"+id+".tsv")
				if err := atomicio.WriteFileBytes(path, []byte(lc.TSV())); err != nil {
					fatal(err)
				}
				fmt.Printf("(tsv: %s)\n\n", path)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positreport:", err)
	os.Exit(1)
}

// offline renders a Fig. 10-style chart and a field-error summary from
// every campaign CSV in dir — the paper's "write them to a log file in
// CSV form for offline analysis and visualization" step.
func offline(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .csv campaign logs in %s", dir)
	}
	sort.Strings(paths)
	chart := &textplot.LineChart{
		Title:  "Offline: mean relative error per bit (from campaign logs)",
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error",
		LogY:   true,
		Height: 24,
	}
	summary := &textplot.Table{Header: []string{
		"log", "trials", "catastrophic", "field", "mean rel err (finite)",
	}}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		trials, err := core.ReadTrialsCSV(f)
		_ = f.Close() // read-only handle; the CSV error below dominates
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if len(trials) == 0 {
			continue
		}
		label := trials[0].Codec + " " + trials[0].Field
		aggs := core.AggregateByBit(trials)
		s := textplot.Series{Name: label}
		for _, a := range aggs {
			s.X = append(s.X, float64(a.Bit))
			s.Y = append(s.Y, a.MeanRelErr)
		}
		chart.Series = append(chart.Series, s)
		for name, agg := range core.FieldErrorSummary(trials) {
			summary.AddRow(filepath.Base(path), fmt.Sprintf("%d", agg.Trials),
				fmt.Sprintf("%d", agg.Catastrophic), name, fmt.Sprintf("%.3g", agg.MeanRelErr))
		}
	}
	fmt.Println(chart.Render())
	fmt.Println(summary.Render())
	return nil
}
