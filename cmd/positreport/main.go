// Command positreport regenerates the paper's tables and figures as
// text charts (and optionally TSV series for external plotting).
//
// Usage:
//
//	positreport -fig 10                 # one figure, quick budget
//	positreport -fig all -budget paper  # everything at 313 trials/bit
//	positreport -fig 20 -tsv out/       # also dump TSV series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"positres/internal/atomicio"
	"positres/internal/core"
	"positres/internal/figures"
	"positres/internal/store"
	"positres/internal/textplot"
)

// renderable is anything with a text rendering.
type renderable interface{ Render() string }

func main() {
	var (
		figFlag    = flag.String("fig", "all", "figure id: table1, 3, 7, 10, 11, 11abs, 14, 16, 18, 20, findings, widths, multibit, ablation, or all")
		budgetName = flag.String("budget", "quick", "quick (fast) or paper (313 trials/bit, 2M elements)")
		tsvDir     = flag.String("tsv", "", "directory to also write TSV series into")
		datasetN   = flag.Int("n", 0, "override dataset sample size")
		trials     = flag.Int("trials", 0, "override trials per bit")
		seed       = flag.Uint64("seed", 0, "override seed")
		fromDir    = flag.String("from", "", "offline mode: render per-bit curves from campaign CSV logs in this directory instead of re-running")
	)
	flag.Parse()

	if *fromDir != "" {
		if err := offline(*fromDir); err != nil {
			fatal(err)
		}
		return
	}

	b := figures.QuickBudget
	if *budgetName == "paper" {
		b = figures.PaperBudget
	}
	if *datasetN > 0 {
		b.DatasetN = *datasetN
	}
	if *trials > 0 {
		b.TrialsPerBit = *trials
	}
	if *seed > 0 {
		b.Seed = *seed
	}

	builders := map[string]func() renderable{
		"table1":     func() renderable { return figures.Table1(b) },
		"3":          func() renderable { return figures.Fig3() },
		"7":          func() renderable { return figures.Fig7() },
		"10":         func() renderable { return figures.Fig10(b) },
		"11":         func() renderable { return figures.Fig11(b) },
		"11abs":      func() renderable { return figures.Fig11AbsErr(b) },
		"14":         func() renderable { return figures.Fig14(b) },
		"16":         func() renderable { return figures.Fig16(b) },
		"18":         func() renderable { return figures.Fig18(b) },
		"20":         func() renderable { return figures.Fig20(b) },
		"findings":   func() renderable { return figures.FindingsTable(b, figures.Fig10Fields) },
		"widths":     func() renderable { return figures.WidthSweep(b, "Hurricane/Vf30") },
		"multibit":   func() renderable { return figures.MultiBitTable(b, "HACC/vy") },
		"ablation":   func() renderable { return figures.ESAblation(b, "CESM/RELHUM") },
		"solver":     func() renderable { return figures.SolverImpactTable(b) },
		"protection": func() renderable { return figures.ProtectionTable(b) },
		"softerror":  func() renderable { return figures.SoftErrorTable(b) },
		"ml":         func() renderable { return figures.MLFlipChart(b) },
		"mltable":    func() renderable { return figures.MLImpactTable(b) },
		"detection":  func() renderable { return figures.DetectionChart(b) },
		"dettable":   func() renderable { return figures.DetectionTable(b) },
		"abft":       func() renderable { return figures.ABFTTable(b) },
		"checkpoint": func() renderable { return figures.CheckpointTable(b) },
		"sdc":        func() renderable { return figures.SDCChart(b, 1) },
		"sdctable":   func() renderable { return figures.SDCTable(b) },
		"repr":       func() renderable { return figures.RepresentationTable(b) },
	}
	order := []string{"table1", "3", "7", "10", "11", "11abs", "14", "16", "18", "20",
		"findings", "widths", "multibit", "ablation", "solver", "protection", "softerror", "ml", "mltable", "detection", "dettable", "abft", "checkpoint", "sdc", "sdctable", "repr"}

	var ids []string
	if *figFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := builders[id]; !ok {
				fmt.Fprintf(os.Stderr, "positreport: unknown figure %q (known: %s, all)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *tsvDir != "" {
		if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		r := builders[id]()
		fmt.Println(r.Render())
		if *tsvDir != "" {
			if lc, ok := r.(*textplot.LineChart); ok {
				path := filepath.Join(*tsvDir, "fig"+id+".tsv")
				if err := atomicio.WriteFileBytes(path, []byte(lc.TSV())); err != nil {
					fatal(err)
				}
				fmt.Printf("(tsv: %s)\n\n", path)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positreport:", err)
	os.Exit(1)
}

// offline renders a Fig. 10-style chart and per-input summaries from
// every campaign artifact in dir — the paper's "write them to a log
// file in CSV form for offline analysis and visualization" step, grown
// to three input shapes: trial CSV logs, sealed .pts trial stores, and
// positres-aggregate/v1 JSON documents (what Client.FetchAggregate
// saves). Stores and aggregate documents render from their footer
// summaries alone — O(bits) per input, no trial rescan — so a
// 10⁷-trial campaign plots in milliseconds.
func offline(dir string) error {
	var paths []string
	for _, pat := range []string{"*.csv", "*.pts", "*.json"} {
		m, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return err
		}
		paths = append(paths, m...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("no campaign artifacts (.csv, .pts, .json) in %s", dir)
	}
	sort.Strings(paths)
	var series []textplot.Series
	var aggRows []figures.AggSummaryRow
	fieldSummary := &textplot.Table{Header: []string{
		"log", "trials", "catastrophic", "field", "mean rel err (finite)",
	}}
	haveFieldRows := false
	for _, path := range paths {
		switch filepath.Ext(path) {
		case ".pts":
			rd, err := store.Open(path)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			aggs := rd.BitAggs()
			label := rd.Codec() + " " + rd.Field()
			if err := rd.Close(); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			series = append(series, figures.AggSeries(label, aggs))
			aggRows = append(aggRows, figures.AggSummaryRow{Source: filepath.Base(path), Aggs: aggs})
		case ".json":
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			doc, err := store.ReadDoc(f)
			_ = f.Close() // read-only handle; the parse error below dominates
			if err != nil {
				// Not every .json in a results directory is an aggregate
				// document (job.json, telemetry snapshots); skip quietly.
				continue
			}
			aggs := doc.BitAggs()
			series = append(series, figures.AggSeries(doc.Codec+" "+doc.Field, aggs))
			aggRows = append(aggRows, figures.AggSummaryRow{Source: filepath.Base(path), Aggs: aggs})
		default: // .csv
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			trials, err := core.ReadTrialsCSV(f)
			_ = f.Close() // read-only handle; the CSV error below dominates
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if len(trials) == 0 {
				continue
			}
			label := trials[0].Codec + " " + trials[0].Field
			series = append(series, figures.AggSeries(label, core.AggregateByBit(trials)))
			for name, agg := range core.FieldErrorSummary(trials) {
				fieldSummary.AddRow(filepath.Base(path), fmt.Sprintf("%d", agg.Trials),
					fmt.Sprintf("%d", agg.Catastrophic), name, fmt.Sprintf("%.3g", agg.MeanRelErr))
				haveFieldRows = true
			}
		}
	}
	if len(series) == 0 {
		return fmt.Errorf("no renderable campaign artifacts in %s", dir)
	}
	chart := figures.AggChart("Offline: mean relative error per bit (from campaign artifacts)", series)
	fmt.Println(chart.Render())
	if haveFieldRows {
		fmt.Println(fieldSummary.Render())
	}
	if len(aggRows) > 0 {
		fmt.Println(figures.AggSummaryTable(aggRows).Render())
	}
	return nil
}
