// Command positcampaign runs the paper's fault-injection campaign:
// for each selected (field, format) pair it injects single-bit flips
// at every bit position and logs per-trial error metrics as CSV
// (paper §4, Fig. 8).
//
// With -out the campaign is durable: progress is journaled shard by
// shard under <out>/journal with a manifest at <out>/manifest.json, so
// a crashed or interrupted run continues with -resume and produces
// CSVs byte-identical to an uninterrupted run (docs/RESILIENCE.md).
//
// Usage:
//
//	positcampaign -field Nyx/temperature -formats posit32,ieee32 -out logs/
//	positcampaign -field all -trials 313 -n 2000000 -out logs/
//	positcampaign -field all -out logs/ -resume
//	positcampaign -field HACC/vx -data vx.f32 -formats posit32 -out logs/
//
// Exit codes: 0 complete; 1 fatal error; 2 usage; 3 partial (one or
// more shards failed permanently — see manifest.json); 130 interrupted
// (SIGINT/SIGTERM; progress journaled).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -pprof listener
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"positres/internal/atomicio"
	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/runner"
	"positres/internal/sdrbench"
	"positres/internal/spec"
	"positres/internal/store"
	"positres/internal/telemetry"
	"positres/internal/textplot"
)

// Exit codes of the campaign process.
const (
	exitOK        = 0
	exitFatal     = 1
	exitUsage     = 2
	exitPartial   = 3
	exitInterrupt = 130
)

func main() { os.Exit(run()) }

func run() int {
	var (
		fieldFlag    = flag.String("field", "", "field key (Dataset/Name), or 'all'")
		dataFlag     = flag.String("data", "", "optional raw .f32 file to inject into (instead of synthetic data)")
		fmtsFlag     = flag.String("formats", "posit32,ieee32", "comma-separated formats: "+strings.Join(numfmt.Names(), ", "))
		trials       = flag.Int("trials", 313, "trials per bit position (paper: 313)")
		n            = flag.Int("n", 2_000_000, "synthetic elements per field")
		seed         = flag.Uint64("seed", 1, "campaign seed (reproducible)")
		workers      = flag.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS)")
		outDir       = flag.String("out", "", "directory for per-(field,format) trial CSVs, journal and manifest")
		storeOut     = flag.String("store-out", "", "stream trials into columnar .pts stores in this directory (bounded memory; implies no trial slab)")
		keepZeros    = flag.Bool("keep-zeros", false, "allow zero-valued elements to be selected")
		resume       = flag.Bool("resume", false, "continue the campaign journaled in -out")
		shardTimeout = flag.Duration("shard-timeout", 10*time.Minute, "per-shard watchdog; a stuck shard is abandoned and retried (0 disables)")
		maxRetries   = flag.Int("max-retries", 2, "retries per shard after its first attempt")
		bitsPerShard = flag.Int("bits-per-shard", 8, "bit positions per journaled work unit")
		telemetryOut = flag.String("telemetry-out", "", "write a JSON telemetry snapshot (schema "+telemetry.SnapshotSchema+") to this file on exit")
		pprofAddr    = flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060) while the campaign runs")
		// Deliberate failure injection for the resilience e2e test
		// (scripts/resume_e2e.sh); not for normal use.
		crashAfter  = flag.Int("debug-crash-after", 0, "if >0, simulate a hard crash (exit 137) after N shards complete")
		sigintAfter = flag.Int("debug-sigint-after", 0, "if >0, send ourselves SIGINT after N shards complete")
	)
	flag.Parse()

	// Telemetry is always collected (the counters are a few atomic adds
	// per bit/shard); the flags only control where it is exposed.
	metrics := telemetry.New()
	telemetry.Publish("positres.campaign", metrics)
	if *pprofAddr != "" {
		go func() {
			// expvar's init hooked /debug/vars into the default mux and
			// net/http/pprof hooked /debug/pprof/*; serving the default
			// mux exposes both.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "positcampaign: pprof listener:", err)
			}
		}()
	}
	// The snapshot is written on every exit path — complete, partial,
	// interrupted or fatal — and never changes the exit code: telemetry
	// must observe failures, not mask them.
	if *telemetryOut != "" {
		defer func() {
			if err := atomicio.WriteFile(*telemetryOut, metrics.WriteSnapshot); err != nil {
				fmt.Fprintln(os.Stderr, "positcampaign: telemetry snapshot:", err)
			}
		}()
	}

	if *fieldFlag == "" {
		flag.Usage()
		return exitUsage
	}
	if *resume && *outDir == "" {
		fmt.Fprintln(os.Stderr, "positcampaign: -resume requires -out (the journal lives there)")
		return exitUsage
	}
	if *storeOut != "" && *dataFlag != "" {
		fmt.Fprintln(os.Stderr, "positcampaign: -store-out applies to sharded campaigns, not -data runs")
		return exitUsage
	}
	// One canonical campaign description: the same spec.CampaignSpec
	// that POST /v1/campaigns accepts and runner.Config consumes, so
	// the CLI and the service cannot drift in defaults or validation.
	var fieldKeys []string
	if *fieldFlag == "all" {
		for _, f := range sdrbench.Fields() {
			fieldKeys = append(fieldKeys, f.Key())
		}
	} else {
		fieldKeys = []string{*fieldFlag}
	}
	var formats []string
	for _, name := range strings.Split(*fmtsFlag, ",") {
		formats = append(formats, strings.TrimSpace(name))
	}
	retries := *maxRetries
	cs := &spec.CampaignSpec{
		Fields:       fieldKeys,
		Formats:      formats,
		N:            *n,
		TrialsPerBit: *trials,
		Seed:         *seed,
		KeepZeros:    *keepZeros,
		BitsPerShard: *bitsPerShard,
		MaxRetries:   &retries,
		ShardTimeout: shardTimeout.String(),
	}
	if verr := cs.Validate(); verr != nil {
		// The stable error code (shared with the HTTP API) prefixes the
		// message so scripts can dispatch on it.
		fmt.Fprintf(os.Stderr, "positcampaign: %s: %s\n", verr.Code, verr.Message)
		return exitFatal
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fatal(err)
		}
	}

	// SIGINT/SIGTERM cancel the campaign context; workers drain, the
	// journal keeps every completed shard, and we exit 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dataFlag != "" {
		// Explicit data file: run the selected fields' campaigns over
		// the provided array (not sharded — the file is the dataset).
		raw, err := sdrbench.ReadRawFile(*dataFlag)
		if err != nil {
			return fatal(err)
		}
		data := sdrbench.ToFloat64(raw)
		cfg := core.ConfigFromSpec(cs)
		cfg.Metrics = metrics
		cfg.Workers = *workers
		for _, fk := range cs.Fields {
			for _, name := range cs.Formats {
				codec, err := numfmt.Lookup(name)
				if err != nil {
					return fatal(err) // unreachable after Validate
				}
				res, err := core.Run(ctx, cfg, codec, fk, data)
				if errors.Is(err, context.Canceled) {
					fmt.Fprintln(os.Stderr, "positcampaign: interrupted")
					return exitInterrupt
				}
				if err != nil {
					return fatal(err)
				}
				if err := report(res, res.Elapsed, *outDir); err != nil {
					return fatal(err)
				}
			}
		}
		return exitOK
	}

	// Synthetic data: durable sharded campaign matrix. With -store-out
	// trials stream shard by shard into columnar .pts stores instead of
	// accumulating in memory, so campaign size no longer bounds RSS.
	var cw *store.CampaignWriter
	if *storeOut != "" {
		if err := os.MkdirAll(*storeOut, 0o755); err != nil {
			return fatal(err)
		}
		cw = store.NewCampaignWriter(*storeOut)
		defer cw.Abort() // no-op for stores Seal already committed
	}
	var doneShards int32
	rcfg := runner.Config{
		Spec:    cs,
		Dir:     *outDir,
		Resume:  *resume,
		Workers: *workers,
		Metrics: metrics,
		OnShardDone: func(st runner.ShardStatus) {
			if st.State == runner.ShardFailed {
				fmt.Fprintf(os.Stderr, "positcampaign: shard %s failed: %s\n", st.ID(), st.Error)
			}
			if st.State != runner.ShardDone {
				return
			}
			n := atomic.AddInt32(&doneShards, 1)
			if *crashAfter > 0 && n >= int32(*crashAfter) {
				os.Exit(137) // simulated hard crash: no drain, no manifest update
			}
			if *sigintAfter > 0 && n == int32(*sigintAfter) {
				// Exercises the real signal path end to end.
				if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
					fmt.Fprintln(os.Stderr, "positcampaign: self-SIGINT:", err)
				}
			}
		},
	}
	if cw != nil {
		rcfg.Sink = cw
	}
	rep, err := runner.Run(ctx, rcfg)
	if err != nil {
		return fatal(err)
	}

	if rep.Cancelled {
		// Completed shards are journaled; CSVs are only published by
		// complete runs so a final-path CSV is always a whole campaign.
		fmt.Fprintf(os.Stderr, "positcampaign: interrupted after %d/%d shards; resume with -resume\n",
			rep.Completed+rep.Resumed, len(rep.Shards))
		return exitInterrupt
	}
	published := 0
	for _, res := range rep.Results {
		if res == nil {
			continue
		}
		if cw != nil {
			if err := storeReport(res, cw, *storeOut); err != nil {
				return fatal(err)
			}
		} else if err := report(res, res.Elapsed, *outDir); err != nil {
			return fatal(err)
		}
		published++
	}
	if rep.Partial() {
		fmt.Fprintf(os.Stderr, "positcampaign: partial: %d shard(s) failed permanently; see %s\n",
			rep.Failed, filepath.Join(*outDir, "manifest.json"))
		return exitPartial
	}
	fmt.Printf("total: %d campaigns, %v\n", published, rep.Elapsed.Round(time.Millisecond))
	return exitOK
}

// report prints a campaign summary and, with -out, publishes the trial
// CSV atomically: a reader never observes a partial file at the final
// path, no matter when the process dies.
func report(res *core.Result, elapsed time.Duration, outDir string) error {
	fmt.Printf("== %s / %s: %d trials in ~%v\n", res.Field, res.Codec, len(res.Trials), elapsed.Round(time.Millisecond))
	printSummary(core.AggregateByBit(res.Trials))
	if outDir == "" {
		return nil
	}
	name := fmt.Sprintf("%s_%s.csv", strings.ReplaceAll(res.Field, "/", "_"), res.Codec)
	path := filepath.Join(outDir, name)
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return core.WriteTrialsCSV(w, res.Trials)
	})
	if err != nil {
		return err
	}
	fmt.Printf("   log: %s\n", path)
	return nil
}

// storeReport seals one (field, format) store and prints its summary
// straight from the footer aggregates — no trial slab exists to scan.
func storeReport(res *core.Result, cw *store.CampaignWriter, storeDir string) error {
	if err := cw.Seal(res.Field, res.Codec); err != nil {
		return err
	}
	path := filepath.Join(storeDir, store.FileName(res.Field, res.Codec))
	rd, err := store.Open(path)
	if err != nil {
		return err
	}
	fmt.Printf("== %s / %s: %d trials in ~%v\n", res.Field, res.Codec, rd.Rows(), res.Elapsed.Round(time.Millisecond))
	printSummary(rd.BitAggs())
	if err := rd.Close(); err != nil {
		return err
	}
	fmt.Printf("   store: %s\n", path)
	return nil
}

func printSummary(aggs []core.BitAgg) {
	t := &textplot.Table{Header: []string{"bits", "mean rel err", "median rel err", "max rel err", "catastrophic"}}
	// Condense to field-level rows: group aggregate bits into quarters.
	width := len(aggs)
	quarter := (width + 3) / 4
	for q := 0; q < 4; q++ {
		lo, hi := q*quarter, (q+1)*quarter
		if hi > width {
			hi = width
		}
		if lo >= hi {
			continue
		}
		var mean, max float64
		var cat, cnt int
		var medians []float64
		for _, a := range aggs[lo:hi] {
			if !isBad(a.MeanRelErr) {
				mean += a.MeanRelErr
				cnt++
			}
			if !isBad(a.MaxRelErr) && a.MaxRelErr > max {
				max = a.MaxRelErr
			}
			if !isBad(a.MedianRelErr) {
				medians = append(medians, a.MedianRelErr)
			}
			cat += a.Catastrophic
		}
		med := 0.0
		if len(medians) > 0 {
			med = medians[len(medians)/2]
		}
		if cnt > 0 {
			mean /= float64(cnt)
		}
		t.AddRow(fmt.Sprintf("%d-%d", aggs[lo].Bit, aggs[hi-1].Bit),
			fmt.Sprintf("%.3g", mean), fmt.Sprintf("%.3g", med),
			fmt.Sprintf("%.3g", max), fmt.Sprintf("%d", cat))
	}
	fmt.Print(t.Render())
}

func isBad(v float64) bool { return math.IsNaN(v) || v > 1e308 || v < -1e308 }

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "positcampaign:", err)
	return exitFatal
}
