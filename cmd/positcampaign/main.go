// Command positcampaign runs the paper's fault-injection campaign:
// for each selected (field, format) pair it injects single-bit flips
// at every bit position and logs per-trial error metrics as CSV
// (paper §4, Fig. 8).
//
// Usage:
//
//	positcampaign -field Nyx/temperature -formats posit32,ieee32 -out logs/
//	positcampaign -field all -trials 313 -n 2000000 -out logs/
//	positcampaign -field HACC/vx -data vx.f32 -formats posit32 -out logs/
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
	"positres/internal/textplot"
)

func main() {
	var (
		fieldFlag = flag.String("field", "", "field key (Dataset/Name), or 'all'")
		dataFlag  = flag.String("data", "", "optional raw .f32 file to inject into (instead of synthetic data)")
		fmtsFlag  = flag.String("formats", "posit32,ieee32", "comma-separated formats: "+strings.Join(numfmt.Names(), ", "))
		trials    = flag.Int("trials", 313, "trials per bit position (paper: 313)")
		n         = flag.Int("n", 2_000_000, "synthetic elements per field")
		seed      = flag.Uint64("seed", 1, "campaign seed (reproducible)")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		outDir    = flag.String("out", "", "directory for per-(field,format) trial CSVs")
		keepZeros = flag.Bool("keep-zeros", false, "allow zero-valued elements to be selected")
	)
	flag.Parse()

	if *fieldFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	var fields []sdrbench.Field
	if *fieldFlag == "all" {
		fields = sdrbench.Fields()
	} else {
		f, err := sdrbench.Lookup(*fieldFlag)
		if err != nil {
			fatal(err)
		}
		fields = []sdrbench.Field{f}
	}

	var codecs []numfmt.Codec
	for _, name := range strings.Split(*fmtsFlag, ",") {
		c, err := numfmt.Lookup(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		codecs = append(codecs, c)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.TrialsPerBit = *trials
	cfg.Workers = *workers
	cfg.SkipZeros = !*keepZeros

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if *dataFlag != "" {
		// Explicit data file: run the selected fields' campaigns over
		// the provided array.
		raw, err := sdrbench.ReadRawFile(*dataFlag)
		if err != nil {
			fatal(err)
		}
		data := sdrbench.ToFloat64(raw)
		for _, f := range fields {
			for _, codec := range codecs {
				start := time.Now()
				res, err := core.Run(cfg, codec, f.Key(), data)
				if err != nil {
					fatal(err)
				}
				report(res, time.Since(start), *outDir)
			}
		}
		return
	}

	// Synthetic data: schedule all (field, format) campaigns on a
	// parallel job pool (the paper's per-field cluster parallelism).
	jobs := make([]core.MatrixJob, 0, len(fields)*len(codecs))
	for _, f := range fields {
		for _, codec := range codecs {
			jobs = append(jobs, core.MatrixJob{Field: f, Codec: codec, N: *n, Seed: *seed})
		}
	}
	start := time.Now()
	results, err := core.RunMatrix(cfg, jobs, 0)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	for _, res := range results {
		report(res, elapsed/time.Duration(len(results)), *outDir)
	}
	fmt.Printf("total: %d campaigns, %v\n", len(results), elapsed.Round(time.Millisecond))
}

func report(res *core.Result, elapsed time.Duration, outDir string) {
	fmt.Printf("== %s / %s: %d trials in ~%v\n", res.Field, res.Codec, len(res.Trials), elapsed.Round(time.Millisecond))
	printSummary(res)
	if outDir == "" {
		return
	}
	name := fmt.Sprintf("%s_%s.csv", strings.ReplaceAll(res.Field, "/", "_"), res.Codec)
	path := filepath.Join(outDir, name)
	out, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := core.WriteTrialsCSV(out, res.Trials); err != nil {
		_ = out.Close() // the write error is the one worth reporting
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("   log: %s\n", path)
}

func printSummary(res *core.Result) {
	t := &textplot.Table{Header: []string{"bits", "mean rel err", "median rel err", "max rel err", "catastrophic"}}
	aggs := core.AggregateByBit(res.Trials)
	// Condense to field-level rows: group aggregate bits into quarters.
	width := len(aggs)
	quarter := (width + 3) / 4
	for q := 0; q < 4; q++ {
		lo, hi := q*quarter, (q+1)*quarter
		if hi > width {
			hi = width
		}
		if lo >= hi {
			continue
		}
		var mean, max float64
		var cat, cnt int
		var medians []float64
		for _, a := range aggs[lo:hi] {
			if !isBad(a.MeanRelErr) {
				mean += a.MeanRelErr
				cnt++
			}
			if !isBad(a.MaxRelErr) && a.MaxRelErr > max {
				max = a.MaxRelErr
			}
			if !isBad(a.MedianRelErr) {
				medians = append(medians, a.MedianRelErr)
			}
			cat += a.Catastrophic
		}
		med := 0.0
		if len(medians) > 0 {
			med = medians[len(medians)/2]
		}
		if cnt > 0 {
			mean /= float64(cnt)
		}
		t.AddRow(fmt.Sprintf("%d-%d", aggs[lo].Bit, aggs[hi-1].Bit),
			fmt.Sprintf("%.3g", mean), fmt.Sprintf("%.3g", med),
			fmt.Sprintf("%.3g", max), fmt.Sprintf("%d", cat))
	}
	fmt.Print(t.Render())
}

func isBad(v float64) bool { return math.IsNaN(v) || v > 1e308 || v < -1e308 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positcampaign:", err)
	os.Exit(1)
}
