// Command sdrgen generates the synthetic SDRBench stand-in datasets
// and prints the Table 1 summary (dataset statistics, synthetic vs the
// paper's reported values).
//
// Usage:
//
//	sdrgen -table                      # print Table 1
//	sdrgen -out /tmp/sdr -n 1000000    # write all fields as .f32 files
//	sdrgen -out /tmp/sdr -field Nyx/temperature
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"positres/internal/figures"
	"positres/internal/sdrbench"
)

func main() {
	var (
		outDir    = flag.String("out", "", "directory to write raw float32 field files into")
		fieldFlag = flag.String("field", "", "single field to generate (Dataset/Name); default all")
		n         = flag.Int("n", 1_000_000, "elements per field")
		seed      = flag.Uint64("seed", 1, "generator seed")
		table     = flag.Bool("table", false, "print the Table 1 summary")
	)
	flag.Parse()

	if *table {
		fmt.Print(figures.Table1(figures.Budget{DatasetN: *n, TrialsPerBit: 1, Seed: *seed}).Render())
	}
	if *outDir == "" {
		if !*table {
			flag.Usage()
			os.Exit(2)
		}
		return
	}

	fields := sdrbench.Fields()
	if *fieldFlag != "" {
		f, err := sdrbench.Lookup(*fieldFlag)
		if err != nil {
			fatal(err)
		}
		fields = []sdrbench.Field{f}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, f := range fields {
		name := strings.ReplaceAll(f.Key(), "/", "_") + ".f32"
		path := filepath.Join(*outDir, name)
		data := f.Generate(*n, *seed)
		if err := sdrbench.WriteRawFile(path, data); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d elements, %d bytes)\n", path, len(data), 4*len(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdrgen:", err)
	os.Exit(1)
}
