// Command positinspect is a bit-level inspector for posit and
// IEEE-754 values: it decomposes a value into its fields and
// optionally sweeps every single-bit flip, reproducing the paper's
// worked examples (Figs. 3, 5, 6, 12, 13, 15, 17, 19, 21).
//
// Usage:
//
//	positinspect -value 186.25 -fmt posit32 -sweep
//	positinspect -bits 0x7FFFFFFF -fmt posit32
//	positinspect -value 0.5 -fmt ieee32 -sweep
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"positres/internal/analysis"
	"positres/internal/numfmt"
	"positres/internal/posit"
	"positres/internal/textplot"
)

func main() {
	var (
		valueFlag = flag.String("value", "", "decimal value to inspect (e.g. 186.25)")
		bitsFlag  = flag.String("bits", "", "raw bit pattern to inspect (hex, e.g. 0x40000000)")
		fmtFlag   = flag.String("fmt", "posit32", "format: "+strings.Join(numfmt.Names(), ", "))
		sweepFlag = flag.Bool("sweep", false, "sweep all single-bit flips and tabulate the errors")
	)
	flag.Parse()

	codec, err := numfmt.Lookup(*fmtFlag)
	if err != nil {
		fatal(err)
	}

	var bits uint64
	switch {
	case *bitsFlag != "":
		s := strings.TrimPrefix(strings.ToLower(*bitsFlag), "0x")
		bits, err = strconv.ParseUint(s, 16, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -bits %q: %w", *bitsFlag, err))
		}
	case *valueFlag != "":
		v, err := strconv.ParseFloat(*valueFlag, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -value %q: %w", *valueFlag, err))
		}
		bits = codec.Encode(v)
	default:
		fmt.Fprintln(os.Stderr, "need -value or -bits")
		flag.Usage()
		os.Exit(2)
	}

	describe(codec, bits)
	if *sweepFlag {
		fmt.Println()
		sweep(codec, bits)
	}
}

func describe(codec numfmt.Codec, bits uint64) {
	fmt.Printf("format:  %s (%d bits)\n", codec.Name(), codec.Width())
	fmt.Printf("bits:    %0*x\n", codec.Width()/4, bits)
	fmt.Printf("value:   %g\n", codec.Decode(bits))
	if pc, ok := codec.(*numfmt.PositCodec); ok {
		f := posit.DecodeFields(pc.Cfg, bits)
		fmt.Printf("fields:  %s  (sign|regime|exponent|fraction)\n", posit.BitString(pc.Cfg, bits))
		switch {
		case f.IsZero:
			fmt.Println("         zero pattern")
		case f.IsNaR:
			fmt.Println("         NaR (Not a Real)")
		default:
			fmt.Printf("         k=%d r=%d e=%d f=%d/%d (regime %d bits, exponent %d, fraction %d)\n",
				f.K, f.R, f.Exp, f.Frac, uint64(1)<<uint(f.FracLen),
				f.RegimeLen, f.ExpLen, f.FracLen)
		}
	} else if ic, ok := codec.(*numfmt.IEEECodec); ok {
		f := ic.Fmt.DecodeFields(bits)
		fmt.Printf("fields:  sign=%d exponent=%#x (unbiased %d) fraction=%#x\n",
			f.Sign, f.Exp, int(f.Exp)-ic.Fmt.Bias(), f.Frac)
		switch {
		case ic.Fmt.IsNaN(bits):
			fmt.Println("         NaN")
		case ic.Fmt.IsInf(bits):
			fmt.Println("         infinity")
		case ic.Fmt.IsSubnormal(bits):
			fmt.Println("         subnormal")
		}
	}
}

func sweep(codec numfmt.Codec, bits uint64) {
	t := &textplot.Table{Header: []string{
		"pos", "field", "class", "faulty bits", "faulty value", "abs err", "rel err",
	}}
	if pc, ok := codec.(*numfmt.PositCodec); ok {
		for pos := codec.Width() - 1; pos >= 0; pos-- {
			pf := analysis.AnalyzePositFlip(pc.Cfg, bits, pos)
			t.AddRow(strconv.Itoa(pos), codec.FieldAt(bits, pos), pf.Class.String(),
				fmt.Sprintf("%0*x", codec.Width()/4, pf.NewBits),
				fmtVal(pf.NewVal), fmtVal(pf.AbsErr), fmtVal(pf.RelErr))
		}
	} else if ic, ok := codec.(*numfmt.IEEECodec); ok {
		for pos := codec.Width() - 1; pos >= 0; pos-- {
			fl := analysis.AnalyzeIEEEFlip(ic.Fmt, bits, pos)
			t.AddRow(strconv.Itoa(pos), fl.Field.String(), fl.Outcome.String(),
				fmt.Sprintf("%0*x", codec.Width()/4, fl.NewBits),
				fmtVal(fl.NewVal), fmtVal(fl.AbsErr), fmtVal(fl.RelErr))
		}
	}
	fmt.Print(t.Render())
}

func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return fmt.Sprintf("%.6g", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positinspect:", err)
	os.Exit(1)
}
