package positres_test

// End-to-end CLI tests: build each tool and drive it the way a user
// would, checking output shape and exit behaviour.

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTool compiles a cmd into a temp dir once per test run.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIPositinspect(t *testing.T) {
	bin := buildTool(t, "positinspect")
	out, err := run(t, bin, "-value", "186.25", "-fmt", "posit32", "-sweep")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"posit32", "0|110|11|", "regime-expand", "sign", "fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
	// IEEE mode with raw bits.
	out, err = run(t, bin, "-bits", "0x3F800000", "-fmt", "ieee32")
	if err != nil || !strings.Contains(out, "value:   1") {
		t.Errorf("ieee inspect: %v\n%s", err, out)
	}
	// Missing input exits nonzero.
	if _, err := run(t, bin); err == nil {
		t.Error("no input should fail")
	}
	// Unknown format exits nonzero.
	if _, err := run(t, bin, "-value", "1", "-fmt", "bogus"); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestCLISdrgen(t *testing.T) {
	bin := buildTool(t, "sdrgen")
	dir := t.TempDir()
	out, err := run(t, bin, "-out", dir, "-field", "CESM/CLOUD", "-n", "5000")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	path := filepath.Join(dir, "CESM_CLOUD.f32")
	st, err := os.Stat(path)
	if err != nil || st.Size() != 4*5000 {
		t.Fatalf("generated file: %v, size %d", err, st.Size())
	}
	// Table mode prints all 16 fields.
	out, err = run(t, bin, "-table", "-n", "2000")
	if err != nil || strings.Count(out, "Hurricane") != 6 {
		t.Errorf("table: %v\n%s", err, out)
	}
	// Unknown field fails.
	if _, err := run(t, bin, "-out", dir, "-field", "no/field"); err == nil {
		t.Error("unknown field should fail")
	}
}

func TestCLIPositcampaign(t *testing.T) {
	bin := buildTool(t, "positcampaign")
	dir := t.TempDir()
	out, err := run(t, bin, "-field", "Hurricane/Vf30", "-formats", "posit32,ieee32",
		"-n", "20000", "-trials", "10", "-out", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Hurricane/Vf30 / posit32", "Hurricane/Vf30 / ieee32", "mean rel err"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign output missing %q", want)
		}
	}
	for _, f := range []string{"Hurricane_Vf30_posit32.csv", "Hurricane_Vf30_ieee32.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("log %s: %v", f, err)
		}
		if lines := strings.Count(string(data), "\n"); lines != 1+32*10 {
			t.Errorf("%s: %d lines, want %d", f, lines, 1+32*10)
		}
	}
	// Campaign over an explicit .f32 file.
	raw := filepath.Join(dir, "data.f32")
	gen := buildTool(t, "sdrgen")
	if out, err := run(t, gen, "-out", dir, "-field", "HACC/vx", "-n", "5000"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	os.Rename(filepath.Join(dir, "HACC_vx.f32"), raw)
	out, err = run(t, bin, "-field", "HACC/vx", "-data", raw, "-formats", "posit16", "-trials", "5")
	if err != nil || !strings.Contains(out, "HACC/vx / posit16") {
		t.Errorf("file campaign: %v\n%s", err, out)
	}
	// Missing field flag exits nonzero.
	if _, err := run(t, bin); err == nil {
		t.Error("missing -field should fail")
	}
}

func TestCLIPositreport(t *testing.T) {
	bin := buildTool(t, "positreport")
	dir := t.TempDir()
	out, err := run(t, bin, "-fig", "3,7", "-tsv", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Fig 3") || !strings.Contains(out, "Fig 7") {
		t.Errorf("report output:\n%s", out)
	}
	for _, f := range []string{"fig3.tsv", "fig7.tsv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("tsv %s: %v", f, err)
		}
	}
	// A fast campaign-backed figure with custom budget.
	out, err = run(t, bin, "-fig", "16", "-n", "20000", "-trials", "15")
	if err != nil || !strings.Contains(out, "Fig 16") {
		t.Errorf("fig16: %v\n%s", err, out)
	}
	// Unknown figure exits nonzero.
	if _, err := run(t, bin, "-fig", "99"); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestCLIPositloadSmoke(t *testing.T) {
	bin := buildTool(t, "positload")
	art := filepath.Join(t.TempDir(), "load.json")
	out, err := run(t, bin, "-smoke", "-duration", "2s", "-qps", "30",
		"-inject-workers", "4", "-campaign-n", "256", "-campaign-trials", "2",
		"-chaos-seed", "3", "-chaos-5xx-p", "0.05", "-out", art)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"smoke stack up", "BUDGET OK", "chaos injected"} {
		if !strings.Contains(out, want) {
			t.Errorf("smoke output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(art)
	if err != nil || !bytes.Contains(raw, []byte(`"positres-load/v1"`)) {
		t.Errorf("artifact: %v\n%s", err, raw)
	}
	// -target and -smoke are mutually exclusive; neither is also wrong.
	if _, err := run(t, bin, "-smoke", "-target", "http://x"); err == nil {
		t.Error("-smoke with -target should fail")
	}
	if _, err := run(t, bin); err == nil {
		t.Error("no target should fail")
	}
}

func TestCLIChaosproxy(t *testing.T) {
	bin := buildTool(t, "chaosproxy")
	// Missing -target exits nonzero.
	if _, err := run(t, bin); err == nil {
		t.Error("missing -target should fail")
	}

	// A proxy to a dead upstream starts, answers 502, and drains with
	// a stats dump on SIGTERM.
	cmd := exec.Command(bin, "-target", "http://127.0.0.1:1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	rd := bufio.NewReader(stdout)
	line, err := rd.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "chaosproxy: listening on http://") {
		t.Fatalf("banner %q: %v", line, err)
	}
	url := strings.TrimSpace(strings.TrimPrefix(line, "chaosproxy: listening on "))
	var rest bytes.Buffer
	restDone := make(chan struct{})
	go func() { defer close(restDone); _, _ = io.Copy(&rest, rd) }()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("dead upstream: got %d, want 502", resp.StatusCode)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("exit after SIGTERM: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("chaosproxy did not drain after SIGTERM")
	}
	<-restDone
	if !strings.Contains(stderr.String(), `"upstream_errors": 1`) {
		t.Errorf("stderr missing stats dump:\n%s", stderr.String())
	}
	if !strings.Contains(rest.String(), "drained, exiting") {
		t.Errorf("stdout missing drain line:\n%s", rest.String())
	}
}

func TestCLIPositreportOffline(t *testing.T) {
	campaign := buildTool(t, "positcampaign")
	report := buildTool(t, "positreport")
	dir := t.TempDir()
	if out, err := run(t, campaign, "-field", "CESM/RELHUM", "-formats", "posit32,ieee32",
		"-n", "20000", "-trials", "10", "-out", dir); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	out, err := run(t, report, "-from", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Offline:", "posit32 CESM/RELHUM", "ieee32 CESM/RELHUM", "regime", "exponent"} {
		if !strings.Contains(out, want) {
			t.Errorf("offline report missing %q:\n%s", want, out)
		}
	}
	// Empty directory fails.
	if _, err := run(t, report, "-from", t.TempDir()); err == nil {
		t.Error("empty log dir should fail")
	}
}
